//! Round-robin best-response dynamics: agents are activated in a fixed
//! cyclic order and each plays its *best feasible neighborhood move*
//! (partners must consent — the BNE move model). A full silent round means
//! the state is a Bilateral Neighborhood Equilibrium.
//!
//! One persistent [`GameState`] is threaded through the whole run: each
//! activation reads the previous round's cached distance matrix and agent
//! costs, and every applied move updates them incrementally instead of
//! recomputing from scratch.
//!
//! Improving-move dynamics in network creation games need not converge
//! (Kawald–Lenzner study this for the unilateral game), so the runner also
//! detects exact state revisits and reports *cycling* separately from
//! hitting the round cap. Visited states are remembered as 64-bit hashes
//! of the canonical edge list (not full graph clones), so long runs stay
//! in `O(1)` memory per state.
//!
//! # Anytime runs and trajectory checkpoints
//!
//! [`run_with_policy`] executes the same dynamics under a solver
//! [`ExecPolicy`] with **true anytime semantics**: every activation runs
//! through the metered [`best_response_with_policy`] scan, the policy's
//! eval budget is a **run-level pool** every activation drains, and a
//! stop condition firing *mid-activation* ends the run with the partial
//! work intact — applied moves stay applied, and the interrupted scan's
//! exact position is preserved. An exhausted outcome carries a
//! [`Checkpoint`]; [`resume`] continues the trajectory from it and a
//! chain of budgeted slices reaches the **identical final state** (same
//! move sequence, same fingerprints, same converged/cycled verdict) an
//! uninterrupted run reaches (property-tested in `tests/solver.rs`).

use bncg_core::jsonio;
use bncg_core::solver::ExecPolicy;
use bncg_core::{
    best_response_in, best_response_resume, best_response_with_policy, BestResponseFrontier,
    BestResponseVerdict, CheckBudget, CostModelSpec, GameError, GameState, Move,
};
use bncg_graph::Graph;
use std::collections::HashSet;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// The checkpoint layout version: tokens embed a best-response frontier
/// whose positions are enumeration-layout-bound, so a layout bump there
/// implies one here.
const CHECKPOINT_LAYOUT: u64 = 1;

/// A resumable snapshot of an interrupted round-robin trajectory.
///
/// Carries everything [`resume`] needs to continue to the exact state an
/// uninterrupted run reaches: the **instance fingerprint** of the graph
/// at interruption (the caller re-supplies the graph itself — typically
/// [`RoundRobinOutcome::final_graph`] — and a mismatch is rejected), the
/// in-progress **round** and next **agent index**, the cumulative
/// move/evaluation counters, the **visited-state fingerprints** that
/// power cycle detection, and — when the stop fired mid-activation — the
/// interrupted best-response **scan frontier** with its best-so-far
/// move.
///
/// Serialization is a flat JSON object (`to_json`/`FromStr`):
/// `{"v":1,"instance":…,"round":…,"agent":…,"moved":0|1,"moves":…,`
/// `"evals":…,"seen":[…],"scan":{…}}` where `scan` (optional, always
/// last) is the embedded [`BestResponseFrontier`] token. Tokens cross
/// process boundaries like the solver's; a layout-version mismatch is
/// rejected on parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    instance: u64,
    round: usize,
    agent: u32,
    moved: bool,
    moves: usize,
    evals: u64,
    seen: Vec<u64>,
    scan: Option<BestResponseFrontier>,
}

impl Checkpoint {
    /// The in-progress round (1-based; counts toward `max_rounds`).
    #[must_use]
    pub fn round(&self) -> usize {
        self.round
    }

    /// The next agent to activate (the interrupted one, if a scan
    /// frontier is present).
    #[must_use]
    pub fn agent(&self) -> u32 {
        self.agent
    }

    /// Cumulative applied moves across the whole trajectory chain.
    #[must_use]
    pub fn moves(&self) -> usize {
        self.moves
    }

    /// Cumulative candidate evaluations across the whole chain.
    #[must_use]
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// The interrupted activation's scan frontier, if the stop fired
    /// mid-scan.
    #[must_use]
    pub fn scan(&self) -> Option<&BestResponseFrontier> {
        self.scan.as_ref()
    }

    /// Serializes the checkpoint as a flat JSON object. The embedded
    /// scan token is emitted **last** so the checkpoint's own fields win
    /// the first-occurrence field extraction on parse (the two tokens
    /// share key names like `instance` and `evals`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let scan = match &self.scan {
            Some(f) => format!(",\"scan\":{}", f.to_json()),
            None => String::new(),
        };
        format!(
            "{{\"v\":{CHECKPOINT_LAYOUT},\"instance\":{},\"round\":{},\
             \"agent\":{},\"moved\":{},\"moves\":{},\"evals\":{},\"seen\":{}{scan}}}",
            self.instance,
            self.round,
            self.agent,
            u8::from(self.moved),
            self.moves,
            self.evals,
            jsonio::render_u64_list(&self.seen)
        )
    }
}

impl fmt::Display for Checkpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl FromStr for Checkpoint {
    type Err = GameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // The scan object shares field names with the checkpoint, so
        // strip it off before extracting the checkpoint's own fields —
        // first-occurrence parsing must never read into the nested
        // token.
        let scan = match jsonio::object_field(s, "scan") {
            Some(obj) => Some(obj.parse::<BestResponseFrontier>()?),
            None => None,
        };
        let head = match s.find("\"scan\"") {
            Some(at) => &s[..at],
            None => s,
        };
        let field = |key: &str| {
            jsonio::u64_field(head, key).ok_or_else(|| GameError::Unsupported {
                reason: format!("malformed trajectory checkpoint: missing or invalid {key:?}"),
            })
        };
        let layout = field("v")?;
        if layout != CHECKPOINT_LAYOUT {
            return Err(GameError::Unsupported {
                reason: format!(
                    "trajectory checkpoint has layout version {layout}, this \
                     build speaks version {CHECKPOINT_LAYOUT} — restart the \
                     run instead of resuming"
                ),
            });
        }
        let seen = jsonio::u64_list_field(head, "seen").ok_or_else(|| GameError::Unsupported {
            reason: "malformed trajectory checkpoint: missing or invalid \"seen\"".into(),
        })?;
        Ok(Checkpoint {
            instance: field("instance")?,
            round: field("round")? as usize,
            agent: u32::try_from(field("agent")?).map_err(|_| GameError::Unsupported {
                reason: "malformed trajectory checkpoint: agent overflows u32".into(),
            })?,
            moved: field("moved")? != 0,
            moves: field("moves")? as usize,
            evals: field("evals")?,
            seen,
            scan,
        })
    }
}

/// Outcome of a round-robin run.
#[derive(Debug, Clone)]
pub struct RoundRobinOutcome {
    /// Activation rounds started so far, cumulatively across a resume
    /// chain (a round activates every agent once).
    pub rounds: usize,
    /// Total moves applied across the whole trajectory chain (equals
    /// `history.len()` plus the moves of any prior slices).
    pub moves: usize,
    /// The moves applied **by this slice**, in order (an uninterrupted
    /// run's history is the full trajectory).
    pub history: Vec<Move>,
    /// `true` iff a full round passed with no agent moving (BNE reached).
    pub converged: bool,
    /// `true` iff a previously seen state recurred (a best-response cycle).
    pub cycled: bool,
    /// `true` iff the run stopped because the [`ExecPolicy`] eval-budget
    /// pool drained, its deadline passed, or its cancel token was raised
    /// (only reachable through [`run_with_policy`]/[`resume`]).
    pub exhausted: bool,
    /// The resume token — present exactly when `exhausted` is set.
    pub checkpoint: Option<Checkpoint>,
    /// Candidate evaluations across the whole trajectory chain so far.
    pub evals: u64,
    /// Candidate positions the pruning layer skipped inside **this
    /// slice's** best-response scans (generator subtree kills plus
    /// leaf-filter skips). Unlike `evals` this is not carried through
    /// checkpoints — the resume token stays layout-stable — so a chain
    /// reports per-slice counts; together with the slice's evals it
    /// yields the visited fraction of the scanned move space. The
    /// legacy (non-policy) path reports 0.
    pub skipped: u64,
    /// The final state (of this slice; pass it back to [`resume`]).
    pub final_graph: Graph,
}

/// Runs round-robin best-response dynamics from `start` for at most
/// `max_rounds` rounds.
///
/// # Errors
///
/// Forwards [`GameError::CheckTooLarge`] from the per-agent best-response
/// enumeration (exponential in `n`; keep `n ≲ 20`).
///
/// # Examples
///
/// ```
/// use bncg_core::{Alpha, Concept};
/// use bncg_dynamics::round_robin::run;
/// use bncg_graph::generators;
///
/// let out = run(&generators::path(9), Alpha::integer(2)?, 100)?;
/// assert!(out.converged);
/// assert!(Concept::Bne.is_stable(&out.final_graph, Alpha::integer(2)?)?);
/// # Ok::<(), bncg_core::GameError>(())
/// ```
pub fn run(
    start: &Graph,
    alpha: bncg_core::Alpha,
    max_rounds: usize,
) -> Result<RoundRobinOutcome, GameError> {
    run_with_budget(start, alpha, max_rounds, CheckBudget::default())
}

/// [`run`] with an explicit per-activation budget.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_with_budget(
    start: &Graph,
    alpha: bncg_core::Alpha,
    max_rounds: usize,
    budget: CheckBudget,
) -> Result<RoundRobinOutcome, GameError> {
    run_legacy(start, alpha, max_rounds, budget)
}

/// [`run`] under a solver [`ExecPolicy`] with **true anytime
/// semantics**: every activation is a metered
/// [`best_response_with_policy`] scan, so the policy's eval budget is a
/// run-level pool drained across activations, the deadline (anchored
/// once at call time) and cancel token are polled *inside* scans — not
/// just between them — and any stop yields partial work plus a
/// [`Checkpoint`] in the outcome instead of an error. There is no size
/// guard on this path: an instance whose per-agent move space dwarfs the
/// budget simply makes progress until the pool drains. `threads` is
/// ignored: activations are inherently sequential (each move changes the
/// state the next agent sees).
///
/// Pass the outcome's `final_graph` and `checkpoint` to [`resume`] to
/// continue; each slice's policy grants a fresh budget/deadline
/// allowance, and the chain reaches the identical final state an
/// uninterrupted run reaches.
///
/// # Errors
///
/// Forwards engine errors ([`GameError::InvalidMove`] from a corrupt
/// move application); never [`GameError::CheckTooLarge`].
pub fn run_with_policy(
    start: &Graph,
    alpha: bncg_core::Alpha,
    max_rounds: usize,
    policy: &ExecPolicy,
) -> Result<RoundRobinOutcome, GameError> {
    run_metered(
        start,
        alpha,
        CostModelSpec::SumDistances,
        max_rounds,
        policy,
        None,
    )
}

/// [`run_with_policy`] pricing every activation under an explicit
/// [`CostModelSpec`] — the default model reproduces [`run_with_policy`]
/// exactly. Checkpoints are model-bound through the instance
/// fingerprint.
///
/// # Errors
///
/// Same as [`run_with_policy`].
pub fn run_with_policy_under(
    start: &Graph,
    alpha: bncg_core::Alpha,
    model: CostModelSpec,
    max_rounds: usize,
    policy: &ExecPolicy,
) -> Result<RoundRobinOutcome, GameError> {
    run_metered(start, alpha, model, max_rounds, policy, None)
}

/// Continues an interrupted trajectory: `start` must be the interrupted
/// run's `final_graph` (the checkpoint's instance fingerprint is
/// validated against it) and `max_rounds` the same cap — the
/// checkpoint's round counter keeps counting against it. The policy's
/// budget and deadline are granted afresh to this slice.
///
/// # Errors
///
/// [`GameError::Unsupported`] when the checkpoint does not match
/// `(start, alpha)` or carries a stale scan frontier; otherwise as
/// [`run_with_policy`].
pub fn resume(
    start: &Graph,
    alpha: bncg_core::Alpha,
    max_rounds: usize,
    policy: &ExecPolicy,
    checkpoint: &Checkpoint,
) -> Result<RoundRobinOutcome, GameError> {
    run_metered(
        start,
        alpha,
        CostModelSpec::SumDistances,
        max_rounds,
        policy,
        Some(checkpoint),
    )
}

/// [`resume`] under an explicit [`CostModelSpec`]; the model must be
/// the interrupted run's (the checkpoint's fingerprint check enforces
/// this).
///
/// # Errors
///
/// Same as [`resume`].
pub fn resume_under(
    start: &Graph,
    alpha: bncg_core::Alpha,
    model: CostModelSpec,
    max_rounds: usize,
    policy: &ExecPolicy,
    checkpoint: &Checkpoint,
) -> Result<RoundRobinOutcome, GameError> {
    run_metered(start, alpha, model, max_rounds, policy, Some(checkpoint))
}

/// The legacy guarded loop: unmetered scans under the per-activation
/// [`CheckBudget`] size guard, which refuses oversized instances with
/// [`GameError::CheckTooLarge`] before any work (preserved for the
/// non-policy entry points; the policy path has no guard at all).
fn run_legacy(
    start: &Graph,
    alpha: bncg_core::Alpha,
    max_rounds: usize,
    budget: CheckBudget,
) -> Result<RoundRobinOutcome, GameError> {
    let mut state = GameState::new(start.clone(), alpha);
    let n = start.n() as u32;
    let mut history = Vec::new();
    // A 64-bit fingerprint per visited state instead of full graph
    // clones: collisions would falsely flag a cycle, but at < 10⁻¹² over
    // the few thousand states a run visits, O(1) memory per state wins.
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(state.graph().fingerprint());
    let mut converged = false;
    let mut cycled = false;
    let mut rounds = 0usize;
    'outer: while rounds < max_rounds {
        rounds += 1;
        let mut moved = false;
        for u in 0..n {
            let br = best_response_in(&state, u, budget)?;
            if let Some(mv) = br.best {
                state.apply_move(&mv)?;
                history.push(mv);
                moved = true;
                if !seen.insert(state.graph().fingerprint()) {
                    cycled = true;
                    break 'outer;
                }
            }
        }
        if !moved {
            converged = true;
            break;
        }
    }
    Ok(RoundRobinOutcome {
        rounds,
        moves: history.len(),
        history,
        converged,
        cycled,
        exhausted: false,
        checkpoint: None,
        evals: 0,
        skipped: 0,
        final_graph: state.graph().clone(),
    })
}

/// The anytime loop behind [`run_with_policy`] and [`resume`].
fn run_metered(
    start: &Graph,
    alpha: bncg_core::Alpha,
    model: CostModelSpec,
    max_rounds: usize,
    policy: &ExecPolicy,
    from: Option<&Checkpoint>,
) -> Result<RoundRobinOutcome, GameError> {
    let mut state = GameState::with_cost_model(start.clone(), alpha, model);
    let n = start.n() as u32;
    let run_deadline = policy.deadline.map(|d| Instant::now() + d);
    // A zero budget still makes progress (mirroring `ScanCtl::new`'s
    // clamp): every slice admits at least one evaluation before the
    // pool reads as drained, so a `while checkpoint { resume }` driver
    // always advances instead of re-issuing the identical checkpoint.
    let budget_total = policy.eval_budget.map(|b| b.max(1));

    // Chain state: either fresh or rehydrated from the checkpoint.
    let mut seen: HashSet<u64>;
    let mut rounds;
    let start_agent;
    let mut moved;
    let moves_prior;
    let evals_prior;
    let mut pending_scan: Option<BestResponseFrontier>;
    match from {
        Some(c) => {
            if c.instance != state.fingerprint() {
                return Err(GameError::Unsupported {
                    reason: "trajectory checkpoint was issued for a different \
                             state (pass the interrupted run's final_graph and \
                             the same α)"
                        .into(),
                });
            }
            // The cursor must be one this runner could actually have
            // issued — a hand-edited or corrupted token with an
            // out-of-range agent or round would otherwise skip the
            // remaining activations and report a false `converged`.
            if c.agent >= n || c.round == 0 || c.round > max_rounds {
                return Err(GameError::Unsupported {
                    reason: format!(
                        "trajectory checkpoint cursor (round {}, agent {}) is \
                         out of range for this run (n = {n}, max_rounds = \
                         {max_rounds})",
                        c.round, c.agent
                    ),
                });
            }
            if c.scan.as_ref().is_some_and(|f| f.agent() != c.agent) {
                return Err(GameError::Unsupported {
                    reason: "trajectory checkpoint's scan frontier names a \
                             different agent than its cursor"
                        .into(),
                });
            }
            seen = c.seen.iter().copied().collect();
            rounds = c.round;
            start_agent = c.agent;
            moved = c.moved;
            moves_prior = c.moves;
            evals_prior = c.evals;
            pending_scan = c.scan.clone();
        }
        None => {
            seen = HashSet::new();
            seen.insert(state.graph().fingerprint());
            rounds = 0;
            start_agent = 0;
            moved = false;
            moves_prior = 0;
            evals_prior = 0;
            pending_scan = None;
        }
    }

    let mut history = Vec::new();
    let mut slice_evals = 0u64;
    let mut slice_skipped = 0u64;
    let mut converged = false;
    let mut cycled = false;
    let mut checkpoint: Option<Checkpoint> = None;
    let mut resuming = from.is_some();

    let make_checkpoint = |state: &GameState,
                           round: usize,
                           agent: u32,
                           moved: bool,
                           moves: usize,
                           evals: u64,
                           seen: &HashSet<u64>,
                           scan: Option<BestResponseFrontier>| {
        let mut seen: Vec<u64> = seen.iter().copied().collect();
        seen.sort_unstable();
        Checkpoint {
            instance: state.fingerprint(),
            round,
            agent,
            moved,
            moves,
            evals,
            seen,
            scan,
        }
    };

    // Minimum-progress guarantee: the between-activation stop check is
    // suppressed until this slice has attempted at least one activation,
    // so even a zero deadline or pre-raised cancel token admits one
    // scan attempt (which itself stops at its first poll, advancing the
    // frontier) — a `while checkpoint { resume }` driver therefore
    // always terminates, mirroring `ScanCtl`'s one-quantum floor.
    let mut attempted = false;
    'outer: while resuming || rounds < max_rounds {
        if !resuming {
            rounds += 1;
            moved = false;
        }
        let first_agent = if resuming { start_agent } else { 0 };
        resuming = false;
        for u in first_agent..n {
            // Between-activation stop check: a drained pool, passed
            // deadline, or raised token checkpoints *before* the next
            // scan starts (the scan's own polls catch mid-activation
            // stops).
            let drained = budget_total.is_some_and(|b| slice_evals >= b);
            let overdue = run_deadline.is_some_and(|at| Instant::now() >= at);
            let cancelled = policy
                .cancel
                .as_ref()
                .is_some_and(|c| c.load(Ordering::Relaxed));
            if attempted && (drained || overdue || cancelled) {
                checkpoint = Some(make_checkpoint(
                    &state,
                    rounds,
                    u,
                    moved,
                    moves_prior + history.len(),
                    evals_prior + slice_evals,
                    &seen,
                    pending_scan.take(),
                ));
                break 'outer;
            }
            // Each activation receives the remaining slice of the
            // run-level pool and deadline.
            let act_policy = ExecPolicy {
                threads: 1,
                eval_budget: budget_total.map(|b| b - slice_evals),
                deadline: run_deadline.map(|at| at.saturating_duration_since(Instant::now())),
                cancel: policy.cancel.clone(),
                batch_budget: None,
            };
            let scan_prior = pending_scan.as_ref().map_or(0, BestResponseFrontier::evals);
            attempted = true;
            let verdict = match pending_scan.take() {
                Some(f) => best_response_resume(&state, &act_policy, &f)?,
                None => best_response_with_policy(&state, u, &act_policy)?,
            };
            slice_evals += verdict.evals() - scan_prior;
            // Verdict skip counts are per-call, so a resumed scan needs
            // no prior subtraction.
            slice_skipped += verdict.skipped();
            match verdict {
                BestResponseVerdict::Optimal { response, .. } => {
                    if let Some(mv) = response.best {
                        state.apply_move(&mv)?;
                        history.push(mv);
                        moved = true;
                        if !seen.insert(state.graph().fingerprint()) {
                            cycled = true;
                            break 'outer;
                        }
                    }
                }
                BestResponseVerdict::ImprovedSoFar { frontier, .. }
                | BestResponseVerdict::Exhausted { frontier, .. } => {
                    // Mid-activation stop: the move (if any) is NOT
                    // applied — the scan has not certified the argmin —
                    // but its frontier keeps the partial pricing, so no
                    // work is lost.
                    checkpoint = Some(make_checkpoint(
                        &state,
                        rounds,
                        u,
                        moved,
                        moves_prior + history.len(),
                        evals_prior + slice_evals,
                        &seen,
                        Some(frontier),
                    ));
                    break 'outer;
                }
            }
        }
        if checkpoint.is_some() {
            break;
        }
        if !moved {
            converged = true;
            break;
        }
    }
    Ok(RoundRobinOutcome {
        rounds,
        moves: moves_prior + history.len(),
        exhausted: checkpoint.is_some(),
        checkpoint,
        evals: evals_prior + slice_evals,
        skipped: slice_skipped,
        history,
        converged,
        cycled,
        final_graph: state.graph().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_core::{Alpha, Concept};
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn converged_states_are_bne() {
        let mut rng = bncg_graph::test_rng(61);
        for _ in 0..8 {
            let start = generators::random_tree(9, &mut rng);
            for alpha in ["3/2", "3"] {
                let out = run(&start, a(alpha), 200).unwrap();
                if out.converged {
                    assert!(
                        Concept::Bne.is_stable(&out.final_graph, a(alpha)).unwrap(),
                        "a silent round must certify BNE"
                    );
                }
                assert_eq!(out.moves, out.history.len());
            }
        }
    }

    #[test]
    fn stable_start_converges_in_one_round() {
        let star = generators::star(8);
        let out = run(&star, a("2"), 10).unwrap();
        assert!(out.converged);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.moves, 0);
        assert!(!out.cycled);
        assert!(out.checkpoint.is_none());
        assert_eq!(out.final_graph, star);
    }

    #[test]
    fn every_history_move_was_feasible_when_played() {
        let start = generators::path(8);
        let alpha = a("2");
        let out = run(&start, alpha, 100).unwrap();
        // Replay the history and re-certify each step.
        let mut g = start.clone();
        for mv in &out.history {
            assert!(bncg_core::delta::move_improves_all(&g, alpha, mv).unwrap());
            g = mv.apply(&g).unwrap();
        }
        assert_eq!(g, out.final_graph);
    }

    #[test]
    fn cycle_or_cap_is_reported_not_mislabelled() {
        // Whatever happens on random graphs, the outcome flags must be
        // consistent: converged and cycled are mutually exclusive, and a
        // converged state passes the BNE check.
        let mut rng = bncg_graph::test_rng(62);
        for _ in 0..6 {
            let start = generators::random_connected(8, 0.25, &mut rng);
            let out = run(&start, a("2"), 60).unwrap();
            assert!(!(out.converged && out.cycled));
        }
    }

    #[test]
    fn budget_guard_propagates() {
        let big = generators::path(40);
        assert!(run(&big, a("1"), 5).is_err());
    }

    #[test]
    fn policy_deadline_marks_exhausted() {
        let policy = ExecPolicy::default().with_deadline(std::time::Duration::ZERO);
        let out = run_with_policy(&generators::path(12), a("2"), 100, &policy).unwrap();
        assert!(out.exhausted);
        assert!(!out.converged && !out.cycled);
        assert_eq!(out.moves, 0);
        let ckpt = out.checkpoint.expect("exhausted runs carry a checkpoint");
        assert_eq!(ckpt.round(), 1);
        assert_eq!(ckpt.agent(), 0);
    }

    #[test]
    fn policy_budget_pool_drains_with_partial_work() {
        // The run-level pool replaces the legacy per-activation size
        // guard: a 30-eval pool does real work (possibly applying early
        // moves) before draining, instead of refusing the whole run.
        let tight = ExecPolicy::default().with_eval_budget(30);
        let out = run_with_policy(&generators::path(12), a("2"), 50, &tight).unwrap();
        assert!(out.exhausted, "anytime contract: exhaust, not fail");
        assert!(out.evals >= 1, "the pool must have been drained by work");
        assert!(out.checkpoint.is_some());
        // The legacy path still errors on a sub-guard budget.
        assert!(run_with_budget(&generators::path(12), a("2"), 50, CheckBudget::new(10)).is_err());
    }

    #[test]
    fn metered_runs_report_pruned_work() {
        let out =
            run_with_policy(&generators::path(10), a("2"), 100, &ExecPolicy::default()).unwrap();
        assert!(out.converged);
        assert!(out.evals > 0);
        assert!(
            out.skipped > 0,
            "the pruning layer must skip part of the scanned move space"
        );
        // The legacy path does not meter skips.
        assert_eq!(run(&generators::path(10), a("2"), 100).unwrap().skipped, 0);
    }

    #[test]
    fn policy_cancel_token_stops_the_run() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let token = Arc::new(AtomicBool::new(true));
        let policy = ExecPolicy::default().with_cancel(token);
        let out = run_with_policy(&generators::path(12), a("2"), 100, &policy).unwrap();
        assert!(out.exhausted);
        assert_eq!(out.moves, 0);
        assert!(out.checkpoint.is_some());
    }

    #[test]
    fn resume_chain_reaches_the_uninterrupted_final_state() {
        let start = generators::path(10);
        let alpha = a("2");
        let uninterrupted = run_with_policy(&start, alpha, 100, &ExecPolicy::default()).unwrap();
        assert!(uninterrupted.converged);

        let slice_policy = ExecPolicy::default().with_eval_budget(40);
        let mut out = run_with_policy(&start, alpha, 100, &slice_policy).unwrap();
        let mut full_history = out.history.clone();
        let mut slices = 1u32;
        while let Some(ckpt) = out.checkpoint.take() {
            // Round-trip the token through JSON every slice.
            let parsed: Checkpoint = ckpt.to_json().parse().unwrap();
            assert_eq!(parsed, ckpt);
            out = resume(&out.final_graph, alpha, 100, &slice_policy, &parsed).unwrap();
            full_history.extend(out.history.iter().cloned());
            slices += 1;
            assert!(slices < 10_000, "resume chain failed to terminate");
        }
        assert!(slices > 1, "a 40-eval pool must interrupt the P10 run");
        assert!(out.converged);
        assert_eq!(full_history, uninterrupted.history);
        assert_eq!(out.moves, uninterrupted.moves);
        assert_eq!(out.rounds, uninterrupted.rounds);
        assert_eq!(
            out.final_graph.fingerprint(),
            uninterrupted.final_graph.fingerprint()
        );
    }

    #[test]
    fn zero_budget_policy_still_makes_progress() {
        // A zero budget clamps to one evaluation per slice (mirroring
        // ScanCtl), so even the degenerate resume loop terminates at
        // the uninterrupted run's verdict instead of spinning on an
        // identical checkpoint forever.
        let policy = ExecPolicy::default().with_eval_budget(0);
        let mut out = run_with_policy(&generators::path(10), a("2"), 100, &policy).unwrap();
        let mut slices = 1u32;
        while let Some(ckpt) = out.checkpoint.take() {
            out = resume(&out.final_graph, a("2"), 100, &policy, &ckpt).unwrap();
            slices += 1;
            assert!(slices < 100_000, "zero-budget chain must advance");
        }
        assert!(out.converged);
    }

    #[test]
    fn zero_deadline_resume_chain_still_terminates() {
        // The minimum-progress guarantee: each slice attempts one
        // activation before honoring the (already passed) deadline, and
        // that scan stops at its first poll with an advanced frontier —
        // so even the degenerate all-zero-deadline chain converges.
        let policy = ExecPolicy::default().with_deadline(std::time::Duration::ZERO);
        let alpha = a("2");
        let mut out = run_with_policy(&generators::path(10), alpha, 100, &policy).unwrap();
        let mut slices = 1u32;
        while let Some(ckpt) = out.checkpoint.take() {
            out = resume(&out.final_graph, alpha, 100, &policy, &ckpt).unwrap();
            slices += 1;
            assert!(slices < 100_000, "zero-deadline chain must advance");
        }
        assert!(out.converged);
    }

    #[test]
    fn forged_checkpoint_cursors_are_rejected() {
        // A token with the right instance fingerprint but an impossible
        // cursor must error, not skip the remaining activations into a
        // false `converged`.
        let g = generators::path(8);
        let alpha = a("2");
        let fp = bncg_core::GameState::new(g.clone(), alpha).fingerprint();
        let policy = ExecPolicy::default();
        let forged: Checkpoint = format!(
            "{{\"v\":1,\"instance\":{fp},\"round\":1,\"agent\":99,\
             \"moved\":0,\"moves\":0,\"evals\":0,\"seen\":[]}}"
        )
        .parse()
        .unwrap();
        assert!(matches!(
            resume(&g, alpha, 100, &policy, &forged),
            Err(GameError::Unsupported { .. })
        ));
        let forged: Checkpoint = format!(
            "{{\"v\":1,\"instance\":{fp},\"round\":500,\"agent\":0,\
             \"moved\":0,\"moves\":0,\"evals\":0,\"seen\":[]}}"
        )
        .parse()
        .unwrap();
        assert!(matches!(
            resume(&g, alpha, 100, &policy, &forged),
            Err(GameError::Unsupported { .. })
        ));
    }

    #[test]
    fn mismatched_checkpoints_are_rejected() {
        let tight = ExecPolicy::default().with_eval_budget(5);
        let out = run_with_policy(&generators::path(10), a("2"), 100, &tight).unwrap();
        let ckpt = out.checkpoint.expect("tight pool exhausts");
        // Resuming against a different graph (or α) is rejected.
        assert!(matches!(
            resume(&generators::path(10), a("3"), 100, &tight, &ckpt),
            Err(GameError::Unsupported { .. })
        ));
        assert!(matches!(
            resume(&generators::star(10), a("2"), 100, &tight, &ckpt),
            Err(GameError::Unsupported { .. })
        ));
        // Malformed and version-bumped tokens fail to parse.
        assert!("{\"v\":1}".parse::<Checkpoint>().is_err());
        assert!(
            "{\"v\":9,\"instance\":1,\"round\":1,\"agent\":0,\"moved\":0,\
             \"moves\":0,\"evals\":0,\"seen\":[]}"
                .parse::<Checkpoint>()
                .is_err()
        );
    }
}
