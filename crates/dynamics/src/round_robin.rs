//! Round-robin best-response dynamics: agents are activated in a fixed
//! cyclic order and each plays its *best feasible neighborhood move*
//! (partners must consent — the BNE move model). A full silent round means
//! the state is a Bilateral Neighborhood Equilibrium.
//!
//! One persistent [`GameState`] is threaded through the whole run: each
//! activation reads the previous round's cached distance matrix and agent
//! costs, and every applied move updates them incrementally instead of
//! recomputing from scratch.
//!
//! Improving-move dynamics in network creation games need not converge
//! (Kawald–Lenzner study this for the unilateral game), so the runner also
//! detects exact state revisits and reports *cycling* separately from
//! hitting the round cap. Visited states are remembered as 64-bit hashes
//! of the canonical edge list (not full graph clones), so long runs stay
//! in `O(1)` memory per state.

use bncg_core::solver::ExecPolicy;
use bncg_core::{best_response_in, CheckBudget, GameError, GameState, Move};
use bncg_graph::Graph;
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Outcome of a round-robin run.
#[derive(Debug, Clone)]
pub struct RoundRobinOutcome {
    /// Completed activation rounds (a round activates every agent once).
    pub rounds: usize,
    /// Total moves applied.
    pub moves: usize,
    /// The applied moves in order.
    pub history: Vec<Move>,
    /// `true` iff a full round passed with no agent moving (BNE reached).
    pub converged: bool,
    /// `true` iff a previously seen state recurred (a best-response cycle).
    pub cycled: bool,
    /// `true` iff the run stopped because the [`ExecPolicy`] deadline
    /// passed or its cancel token was raised (only reachable through
    /// [`run_with_policy`]).
    pub exhausted: bool,
    /// The final state.
    pub final_graph: Graph,
}

/// Runs round-robin best-response dynamics from `start` for at most
/// `max_rounds` rounds.
///
/// # Errors
///
/// Forwards [`GameError::CheckTooLarge`] from the per-agent best-response
/// enumeration (exponential in `n`; keep `n ≲ 20`).
///
/// # Examples
///
/// ```
/// use bncg_core::{Alpha, Concept};
/// use bncg_dynamics::round_robin::run;
/// use bncg_graph::generators;
///
/// let out = run(&generators::path(9), Alpha::integer(2)?, 100)?;
/// assert!(out.converged);
/// assert!(Concept::Bne.is_stable(&out.final_graph, Alpha::integer(2)?)?);
/// # Ok::<(), bncg_core::GameError>(())
/// ```
pub fn run(
    start: &Graph,
    alpha: bncg_core::Alpha,
    max_rounds: usize,
) -> Result<RoundRobinOutcome, GameError> {
    run_with_budget(start, alpha, max_rounds, CheckBudget::default())
}

/// [`run`] with an explicit per-activation budget.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_with_budget(
    start: &Graph,
    alpha: bncg_core::Alpha,
    max_rounds: usize,
    budget: CheckBudget,
) -> Result<RoundRobinOutcome, GameError> {
    run_inner(start, alpha, max_rounds, budget, None, &None, false)
}

/// [`run`] under a solver [`ExecPolicy`]: the eval budget bounds each
/// agent's best-response enumeration (defaulting to [`CheckBudget`]'s
/// guard) **with anytime semantics** — an instance whose enumeration
/// exceeds the budget ends the run with `exhausted = true` instead of
/// the legacy [`GameError::CheckTooLarge`] — and the deadline and cancel
/// token are polled between activations, so a run that outlives them
/// stops instead of spinning. `threads` is ignored: activations are
/// inherently sequential (each move changes the state the next agent
/// sees).
///
/// # Errors
///
/// Same as [`run`], minus the budget guard (see above).
pub fn run_with_policy(
    start: &Graph,
    alpha: bncg_core::Alpha,
    max_rounds: usize,
    policy: &ExecPolicy,
) -> Result<RoundRobinOutcome, GameError> {
    let budget = policy
        .eval_budget
        .map_or_else(CheckBudget::default, CheckBudget::new);
    let deadline = policy.deadline.map(|d| Instant::now() + d);
    run_inner(
        start,
        alpha,
        max_rounds,
        budget,
        deadline,
        &policy.cancel,
        true,
    )
}

/// The shared loop. `anytime` selects the budget-guard contract: the
/// policy path converts [`GameError::CheckTooLarge`] from an activation
/// into an exhausted outcome, the legacy path propagates it.
fn run_inner(
    start: &Graph,
    alpha: bncg_core::Alpha,
    max_rounds: usize,
    budget: CheckBudget,
    deadline: Option<Instant>,
    cancel: &Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    anytime: bool,
) -> Result<RoundRobinOutcome, GameError> {
    let stop_requested = || {
        deadline.is_some_and(|d| Instant::now() >= d)
            || cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed))
    };
    let mut state = GameState::new(start.clone(), alpha);
    let n = start.n() as u32;
    let mut history = Vec::new();
    // A 64-bit fingerprint per visited state instead of full graph
    // clones: collisions would falsely flag a cycle, but at < 10⁻¹² over
    // the few thousand states a run visits, O(1) memory per state wins.
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(state.graph().fingerprint());
    let mut converged = false;
    let mut cycled = false;
    let mut exhausted = false;
    let mut rounds = 0usize;
    'outer: while rounds < max_rounds {
        rounds += 1;
        let mut moved = false;
        for u in 0..n {
            if stop_requested() {
                exhausted = true;
                break 'outer;
            }
            let br = match best_response_in(&state, u, budget) {
                Err(GameError::CheckTooLarge { .. }) if anytime => {
                    exhausted = true;
                    break 'outer;
                }
                other => other?,
            };
            if let Some(mv) = br.best {
                state.apply_move(&mv)?;
                history.push(mv);
                moved = true;
                if !seen.insert(state.graph().fingerprint()) {
                    cycled = true;
                    break 'outer;
                }
            }
        }
        if !moved {
            converged = true;
            break;
        }
    }
    Ok(RoundRobinOutcome {
        rounds,
        moves: history.len(),
        history,
        converged,
        cycled,
        exhausted,
        final_graph: state.graph().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_core::{Alpha, Concept};
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn converged_states_are_bne() {
        let mut rng = bncg_graph::test_rng(61);
        for _ in 0..8 {
            let start = generators::random_tree(9, &mut rng);
            for alpha in ["3/2", "3"] {
                let out = run(&start, a(alpha), 200).unwrap();
                if out.converged {
                    assert!(
                        Concept::Bne.is_stable(&out.final_graph, a(alpha)).unwrap(),
                        "a silent round must certify BNE"
                    );
                }
                assert_eq!(out.moves, out.history.len());
            }
        }
    }

    #[test]
    fn stable_start_converges_in_one_round() {
        let star = generators::star(8);
        let out = run(&star, a("2"), 10).unwrap();
        assert!(out.converged);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.moves, 0);
        assert!(!out.cycled);
        assert_eq!(out.final_graph, star);
    }

    #[test]
    fn every_history_move_was_feasible_when_played() {
        let start = generators::path(8);
        let alpha = a("2");
        let out = run(&start, alpha, 100).unwrap();
        // Replay the history and re-certify each step.
        let mut g = start.clone();
        for mv in &out.history {
            assert!(bncg_core::delta::move_improves_all(&g, alpha, mv).unwrap());
            g = mv.apply(&g).unwrap();
        }
        assert_eq!(g, out.final_graph);
    }

    #[test]
    fn cycle_or_cap_is_reported_not_mislabelled() {
        // Whatever happens on random graphs, the outcome flags must be
        // consistent: converged and cycled are mutually exclusive, and a
        // converged state passes the BNE check.
        let mut rng = bncg_graph::test_rng(62);
        for _ in 0..6 {
            let start = generators::random_connected(8, 0.25, &mut rng);
            let out = run(&start, a("2"), 60).unwrap();
            assert!(!(out.converged && out.cycled));
        }
    }

    #[test]
    fn budget_guard_propagates() {
        let big = generators::path(40);
        assert!(run(&big, a("1"), 5).is_err());
    }

    #[test]
    fn policy_deadline_marks_exhausted() {
        let policy = ExecPolicy::default().with_deadline(std::time::Duration::ZERO);
        let out = run_with_policy(&generators::path(12), a("2"), 100, &policy).unwrap();
        assert!(out.exhausted);
        assert!(!out.converged && !out.cycled);
        assert_eq!(out.moves, 0);
    }

    #[test]
    fn policy_budget_exhausts_where_the_legacy_budget_errors() {
        let tight = ExecPolicy::default().with_eval_budget(10);
        let out = run_with_policy(&generators::path(12), a("2"), 50, &tight).unwrap();
        assert!(out.exhausted, "anytime contract: exhaust, not fail");
        assert_eq!(out.moves, 0);
        assert!(run_with_budget(&generators::path(12), a("2"), 50, CheckBudget::new(10)).is_err());
    }

    #[test]
    fn policy_cancel_token_stops_the_run() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let token = Arc::new(AtomicBool::new(true));
        let policy = ExecPolicy::default().with_cancel(token);
        let out = run_with_policy(&generators::path(12), a("2"), 100, &policy).unwrap();
        assert!(out.exhausted);
        assert_eq!(out.moves, 0);
    }
}
