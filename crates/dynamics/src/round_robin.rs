//! Round-robin best-response dynamics: agents are activated in a fixed
//! cyclic order and each plays its *best feasible neighborhood move*
//! (partners must consent — the BNE move model). A full silent round means
//! the state is a Bilateral Neighborhood Equilibrium.
//!
//! One persistent [`GameState`] is threaded through the whole run: each
//! activation reads the previous round's cached distance matrix and agent
//! costs, and every applied move updates them incrementally instead of
//! recomputing from scratch.
//!
//! Improving-move dynamics in network creation games need not converge
//! (Kawald–Lenzner study this for the unilateral game), so the runner also
//! detects exact state revisits and reports *cycling* separately from
//! hitting the round cap. Visited states are remembered as 64-bit hashes
//! of the canonical edge list (not full graph clones), so long runs stay
//! in `O(1)` memory per state.

use bncg_core::{best_response_in, CheckBudget, GameError, GameState, Move};
use bncg_graph::Graph;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// Outcome of a round-robin run.
#[derive(Debug, Clone)]
pub struct RoundRobinOutcome {
    /// Completed activation rounds (a round activates every agent once).
    pub rounds: usize,
    /// Total moves applied.
    pub moves: usize,
    /// The applied moves in order.
    pub history: Vec<Move>,
    /// `true` iff a full round passed with no agent moving (BNE reached).
    pub converged: bool,
    /// `true` iff a previously seen state recurred (a best-response cycle).
    pub cycled: bool,
    /// The final state.
    pub final_graph: Graph,
}

/// Runs round-robin best-response dynamics from `start` for at most
/// `max_rounds` rounds.
///
/// # Errors
///
/// Forwards [`GameError::CheckTooLarge`] from the per-agent best-response
/// enumeration (exponential in `n`; keep `n ≲ 20`).
///
/// # Examples
///
/// ```
/// use bncg_core::{Alpha, Concept};
/// use bncg_dynamics::round_robin::run;
/// use bncg_graph::generators;
///
/// let out = run(&generators::path(9), Alpha::integer(2)?, 100)?;
/// assert!(out.converged);
/// assert!(Concept::Bne.is_stable(&out.final_graph, Alpha::integer(2)?)?);
/// # Ok::<(), bncg_core::GameError>(())
/// ```
pub fn run(
    start: &Graph,
    alpha: bncg_core::Alpha,
    max_rounds: usize,
) -> Result<RoundRobinOutcome, GameError> {
    run_with_budget(start, alpha, max_rounds, CheckBudget::default())
}

/// [`run`] with an explicit per-activation budget.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_with_budget(
    start: &Graph,
    alpha: bncg_core::Alpha,
    max_rounds: usize,
    budget: CheckBudget,
) -> Result<RoundRobinOutcome, GameError> {
    let mut state = GameState::new(start.clone(), alpha);
    let n = start.n() as u32;
    let mut history = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(graph_fingerprint(state.graph()));
    let mut converged = false;
    let mut cycled = false;
    let mut rounds = 0usize;
    'outer: while rounds < max_rounds {
        rounds += 1;
        let mut moved = false;
        for u in 0..n {
            let br = best_response_in(&state, u, budget)?;
            if let Some(mv) = br.best {
                state.apply_move(&mv)?;
                history.push(mv);
                moved = true;
                if !seen.insert(graph_fingerprint(state.graph())) {
                    cycled = true;
                    break 'outer;
                }
            }
        }
        if !moved {
            converged = true;
            break;
        }
    }
    Ok(RoundRobinOutcome {
        rounds,
        moves: history.len(),
        history,
        converged,
        cycled,
        final_graph: state.graph().clone(),
    })
}

/// A 64-bit fingerprint of the canonical (sorted) edge list plus the node
/// count. Collisions would falsely flag a cycle; with 64-bit hashes over
/// the few thousand states a run can visit, the collision probability is
/// below 10⁻¹² — and the previous exact representation held every visited
/// edge list in memory, which dominated long runs.
fn graph_fingerprint(g: &Graph) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    g.n().hash(&mut h);
    for (u, v) in g.edges() {
        (u, v).hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_core::{Alpha, Concept};
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn converged_states_are_bne() {
        let mut rng = bncg_graph::test_rng(61);
        for _ in 0..8 {
            let start = generators::random_tree(9, &mut rng);
            for alpha in ["3/2", "3"] {
                let out = run(&start, a(alpha), 200).unwrap();
                if out.converged {
                    assert!(
                        Concept::Bne.is_stable(&out.final_graph, a(alpha)).unwrap(),
                        "a silent round must certify BNE"
                    );
                }
                assert_eq!(out.moves, out.history.len());
            }
        }
    }

    #[test]
    fn stable_start_converges_in_one_round() {
        let star = generators::star(8);
        let out = run(&star, a("2"), 10).unwrap();
        assert!(out.converged);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.moves, 0);
        assert!(!out.cycled);
        assert_eq!(out.final_graph, star);
    }

    #[test]
    fn every_history_move_was_feasible_when_played() {
        let start = generators::path(8);
        let alpha = a("2");
        let out = run(&start, alpha, 100).unwrap();
        // Replay the history and re-certify each step.
        let mut g = start.clone();
        for mv in &out.history {
            assert!(bncg_core::delta::move_improves_all(&g, alpha, mv).unwrap());
            g = mv.apply(&g).unwrap();
        }
        assert_eq!(g, out.final_graph);
    }

    #[test]
    fn cycle_or_cap_is_reported_not_mislabelled() {
        // Whatever happens on random graphs, the outcome flags must be
        // consistent: converged and cycled are mutually exclusive, and a
        // converged state passes the BNE check.
        let mut rng = bncg_graph::test_rng(62);
        for _ in 0..6 {
            let start = generators::random_connected(8, 0.25, &mut rng);
            let out = run(&start, a("2"), 60).unwrap();
            assert!(!(out.converged && out.cycled));
        }
    }

    #[test]
    fn budget_guard_propagates() {
        let big = generators::path(40);
        assert!(run(&big, a("1"), 5).is_err());
    }
}
