//! Word-parallel distance kernels over a `u64`-bitset adjacency.
//!
//! # The n ≤ 64 contract
//!
//! A [`BitsetGraph`] stores one `u64` adjacency row per vertex, so it
//! exists **only for graphs on at most 64 nodes** — exactly one machine
//! word. [`BitsetGraph::from_graph`] returns `None` past that bound and
//! every caller must keep a scalar fallback. This is not a practical
//! restriction for the exponential scans it accelerates: the solver
//! layer already refuses move enumerations past mask width 64, so every
//! candidate-evaluation hot path is structurally within the contract.
//!
//! The payoff is a frontier BFS whose level expansion is pure word
//! arithmetic: OR together the adjacency rows of the current frontier's
//! bits, mask out everything already reached, and the surviving bits
//! *are* the next level. One BFS level costs `O(n)` word ops (popcounts
//! and ORs) instead of `O(n + m)` pointer chasing through adjacency
//! lists, and a whole single-source BFS costs `O(diam · n)` word ops.
//! Distance *sums* ([`BitsetGraph::cost_from`]) never materialize a row
//! at all: each level contributes `level · popcount(next)`.
//!
//! # The scalar-reference testing invariant
//!
//! The scalar substrate ([`bfs_distances`](crate::bfs_distances), the
//! adjacency-list [`Graph`]) is **kept unchanged as the reference
//! implementation**. Every bitset kernel is differential-tested against
//! it: BFS distance rows must be identical (including on disconnected
//! graphs), incrementally toggled matrices must equal rebuilt ones, and
//! the game layer's evaluated candidate streams must be bit-identical so
//! stability witnesses are unchanged. Any future kernel change must keep
//! those equivalences — the scalar path is the spec, the bitset path is
//! the optimization.

use crate::graph::Graph;
use crate::traversal::UNREACHABLE;

/// Maximum node count a [`BitsetGraph`] can represent (one `u64` word).
pub const BITSET_MAX_N: usize = 64;

/// A graph on `n ≤ 64` nodes with one `u64` adjacency word per vertex.
///
/// Bit `v` of `row(u)` is set iff the edge `{u, v}` exists. Edge updates
/// are two bit flips; BFS is word-parallel frontier expansion. The
/// module docs in `bitset.rs` spell out the n ≤ 64 contract and the
/// testing invariant tying this type to the scalar reference substrate.
///
/// # Examples
///
/// ```
/// use bncg_graph::{generators, BitsetGraph};
///
/// let g = generators::path(5);
/// let mut b = BitsetGraph::from_graph(&g).expect("n = 5 ≤ 64");
/// assert!(b.has_edge(1, 2));
/// let (unreachable, dist) = b.cost_from(0);
/// assert_eq!((unreachable, dist), (0, 1 + 2 + 3 + 4));
/// b.remove_edge(1, 2);
/// let (unreachable, _) = b.cost_from(0);
/// assert_eq!(unreachable, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitsetGraph {
    n: usize,
    rows: [u64; BITSET_MAX_N],
}

impl BitsetGraph {
    /// Converts an adjacency-list graph, or `None` when `g.n() > 64`.
    #[must_use]
    pub fn from_graph(g: &Graph) -> Option<Self> {
        let n = g.n();
        if n > BITSET_MAX_N {
            return None;
        }
        let mut rows = [0u64; BITSET_MAX_N];
        for (u, row) in rows.iter_mut().enumerate().take(n) {
            let mut w = 0u64;
            for &v in g.neighbors(u as u32) {
                w |= 1u64 << v;
            }
            *row = w;
        }
        Some(BitsetGraph { n, rows })
    }

    /// Re-syncs the adjacency words from `g` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if `g.n()` differs from this graph's node count (use
    /// [`BitsetGraph::from_graph`] to change dimension).
    pub fn reset_from(&mut self, g: &Graph) {
        assert_eq!(g.n(), self.n, "bitset/graph dimension mismatch");
        for u in 0..self.n {
            let mut w = 0u64;
            for &v in g.neighbors(u as u32) {
                w |= 1u64 << v;
            }
            self.rows[u] = w;
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The adjacency word of `u`: bit `v` set iff `{u, v}` is an edge.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn row(&self, u: u32) -> u64 {
        assert!((u as usize) < self.n, "node out of range");
        self.rows[u as usize]
    }

    /// Degree of `u` (one popcount).
    #[must_use]
    pub fn degree(&self, u: u32) -> u32 {
        self.row(u).count_ones()
    }

    /// Whether the edge `{u, v}` exists.
    #[must_use]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.row(u) & (1u64 << v) != 0
    }

    /// Inserts the edge `{u, v}` (idempotent; `u ≠ v` required).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!(u != v, "self loop");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "node out of range"
        );
        self.rows[u as usize] |= 1u64 << v;
        self.rows[v as usize] |= 1u64 << u;
    }

    /// Deletes the edge `{u, v}` (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn remove_edge(&mut self, u: u32, v: u32) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "node out of range"
        );
        self.rows[u as usize] &= !(1u64 << v);
        self.rows[v as usize] &= !(1u64 << u);
    }

    /// Flips the edge `{u, v}`; returns `true` iff it now exists.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn toggle_edge(&mut self, u: u32, v: u32) -> bool {
        assert!(u != v, "self loop");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "node out of range"
        );
        self.rows[u as usize] ^= 1u64 << v;
        self.rows[v as usize] ^= 1u64 << u;
        self.rows[u as usize] & (1u64 << v) != 0
    }

    /// The set of nodes reachable from `src` (including `src`), as a
    /// bitmask — the frontier loop without distance bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    #[must_use]
    pub fn reachable_from(&self, src: u32) -> u64 {
        assert!((src as usize) < self.n, "source node out of range");
        let mut reached = 1u64 << src;
        let mut frontier = reached;
        while frontier != 0 {
            let mut next = 0u64;
            let mut f = frontier;
            while f != 0 {
                let v = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= self.rows[v];
            }
            next &= !reached;
            reached |= next;
            frontier = next;
        }
        reached
    }

    /// Writes BFS hop distances from `src` into `out` (all `n` entries
    /// overwritten; [`UNREACHABLE`] for other components). Returns the
    /// number of reached nodes, including `src` — the same contract as
    /// the scalar [`bfs_distances`](crate::bfs_distances).
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range or `out` is shorter than `n`.
    pub fn write_distances(&self, src: u32, out: &mut [u32]) -> usize {
        assert!((src as usize) < self.n, "source node out of range");
        let out = &mut out[..self.n];
        out.fill(UNREACHABLE);
        out[src as usize] = 0;
        let mut reached = 1u64 << src;
        let mut frontier = reached;
        let mut level = 0u32;
        while frontier != 0 {
            let mut next = 0u64;
            let mut f = frontier;
            while f != 0 {
                let v = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= self.rows[v];
            }
            next &= !reached;
            level += 1;
            let mut w = next;
            while w != 0 {
                let v = w.trailing_zeros() as usize;
                w &= w - 1;
                out[v] = level;
            }
            reached |= next;
            frontier = next;
        }
        reached.count_ones() as usize
    }

    /// BFS hop distances from `src` into a `Vec` (resized to `n`),
    /// mirroring the scalar [`bfs_distances`](crate::bfs_distances)
    /// signature. Returns the number of reached nodes.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn bfs_distances(&self, src: u32, out: &mut Vec<u32>) -> usize {
        out.clear();
        out.resize(self.n, UNREACHABLE);
        self.write_distances(src, out)
    }

    /// The distance-sum kernel of the candidate-evaluation hot path:
    /// `(unreachable_count, Σ dist(src, v) over reached v)` with **no
    /// distance row materialized** — each BFS level contributes
    /// `level · popcount(level_set)` to the sum.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    #[must_use]
    pub fn cost_from(&self, src: u32) -> (u32, u64) {
        assert!((src as usize) < self.n, "source node out of range");
        let mut reached = 1u64 << src;
        let mut frontier = reached;
        let mut level = 0u64;
        let mut dist = 0u64;
        while frontier != 0 {
            let mut next = 0u64;
            let mut f = frontier;
            while f != 0 {
                let v = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= self.rows[v];
            }
            next &= !reached;
            if next == 0 {
                break;
            }
            level += 1;
            dist += level * u64::from(next.count_ones());
            reached |= next;
            frontier = next;
        }
        (self.n as u32 - reached.count_ones(), dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::bfs_distances;
    use crate::{generators, test_rng};

    fn random_cases() -> Vec<Graph> {
        let mut rng = test_rng(0xB175E7);
        let mut cases = vec![
            Graph::new(1),
            Graph::new(5),
            generators::path(2),
            generators::star(9),
            generators::cycle(12),
            Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap(),
        ];
        for n in [8, 17, 33, 63, 64] {
            for p in [0.05, 0.2, 0.6] {
                cases.push(generators::gnp(n, p, &mut rng));
            }
            cases.push(generators::random_connected(n, 0.1, &mut rng));
        }
        cases
    }

    #[test]
    fn bitset_bfs_matches_scalar_reference() {
        // The differential contract from the module docs: identical
        // distance rows and reach counts on every source, including
        // disconnected graphs and the n = 64 boundary.
        let mut scalar = Vec::new();
        let mut bits_row = Vec::new();
        for g in random_cases() {
            let b = BitsetGraph::from_graph(&g).unwrap();
            for u in 0..g.n() as u32 {
                let r1 = bfs_distances(&g, u, &mut scalar);
                let r2 = b.bfs_distances(u, &mut bits_row);
                assert_eq!(r1, r2, "reach count from {u}");
                assert_eq!(scalar, bits_row, "distance row from {u}");
            }
        }
    }

    #[test]
    fn cost_from_matches_materialized_rows() {
        let mut row = Vec::new();
        for g in random_cases() {
            let b = BitsetGraph::from_graph(&g).unwrap();
            for u in 0..g.n() as u32 {
                let reached = bfs_distances(&g, u, &mut row);
                let expect_unreachable = (g.n() - reached) as u32;
                let expect_dist: u64 = row
                    .iter()
                    .filter(|&&d| d != UNREACHABLE)
                    .map(|&d| u64::from(d))
                    .sum();
                assert_eq!(b.cost_from(u), (expect_unreachable, expect_dist));
                assert_eq!(
                    b.reachable_from(u).count_ones() as usize,
                    reached,
                    "reachable mask from {u}"
                );
            }
        }
    }

    #[test]
    fn edge_updates_mirror_the_graph() {
        let mut rng = test_rng(99);
        let g = generators::gnp(16, 0.3, &mut rng);
        let mut b = BitsetGraph::from_graph(&g).unwrap();
        let mut g2 = g.clone();
        for step in 0u32..40 {
            let u = step % 16;
            let v = (step * 7 + 3) % 16;
            if u == v {
                continue;
            }
            let now = b.toggle_edge(u, v);
            g2.toggle_edge(u, v).unwrap();
            assert_eq!(now, g2.has_edge(u, v));
            assert_eq!(b, BitsetGraph::from_graph(&g2).unwrap());
            assert_eq!(b.degree(u), g2.degree(u) as u32);
        }
        // add/remove are idempotent, unlike Graph's checked versions.
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        assert!(b.has_edge(0, 1) && b.has_edge(1, 0));
        b.remove_edge(0, 1);
        b.remove_edge(0, 1);
        assert!(!b.has_edge(0, 1));
    }

    #[test]
    fn reset_from_resyncs_in_place() {
        let g = generators::cycle(10);
        let mut b = BitsetGraph::from_graph(&g).unwrap();
        b.toggle_edge(0, 5);
        b.toggle_edge(1, 2);
        b.reset_from(&g);
        assert_eq!(b, BitsetGraph::from_graph(&g).unwrap());
    }

    #[test]
    fn oversized_graphs_are_refused() {
        assert!(BitsetGraph::from_graph(&Graph::new(65)).is_none());
        assert!(BitsetGraph::from_graph(&Graph::new(64)).is_some());
    }
}
