//! Bridges and articulation points (Tarjan lowpoint computation).
//!
//! In the bilateral game a *bridge* removal disconnects its endpoints —
//! lexicographically never improving for the remover — so the Remove
//! Equilibrium checker only needs to examine non-bridge edges. Beyond the
//! optimization, 2-edge-connectivity structure is useful when reasoning
//! about which equilibria can shed edges at all.

use crate::graph::Graph;
use std::collections::HashSet;

/// The result of one lowpoint pass: bridges and articulation points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connectivity {
    /// Bridge edges, normalized as `(min, max)` and sorted.
    pub bridges: Vec<(u32, u32)>,
    /// Articulation points, sorted.
    pub articulation_points: Vec<u32>,
}

/// Computes bridges and articulation points with an iterative DFS
/// (no recursion, so deep paths cannot overflow the stack).
///
/// # Examples
///
/// ```
/// use bncg_graph::{connectivity::analyze, generators, Graph};
///
/// // A path: every edge is a bridge, every inner node articulates.
/// let path = generators::path(4);
/// let c = analyze(&path);
/// assert_eq!(c.bridges.len(), 3);
/// assert_eq!(c.articulation_points, vec![1, 2]);
///
/// // A cycle has neither.
/// let c = analyze(&generators::cycle(5));
/// assert!(c.bridges.is_empty());
/// assert!(c.articulation_points.is_empty());
/// ```
#[must_use]
pub fn analyze(g: &Graph) -> Connectivity {
    let n = g.n();
    let mut disc = vec![u32::MAX; n]; // discovery times
    let mut low = vec![u32::MAX; n];
    let mut parent = vec![u32::MAX; n];
    let mut bridges = Vec::new();
    let mut artic: HashSet<u32> = HashSet::new();
    let mut time = 0u32;

    for root in 0..n as u32 {
        if disc[root as usize] != u32::MAX {
            continue;
        }
        // Iterative DFS frame: (node, index into its neighbor list).
        let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
        disc[root as usize] = time;
        low[root as usize] = time;
        time += 1;
        let mut root_children = 0u32;
        while let Some(&mut (u, ref mut idx)) = stack.last_mut() {
            let neighbors = g.neighbors(u);
            if *idx < neighbors.len() {
                let v = neighbors[*idx];
                *idx += 1;
                if disc[v as usize] == u32::MAX {
                    parent[v as usize] = u;
                    if u == root {
                        root_children += 1;
                    }
                    disc[v as usize] = time;
                    low[v as usize] = time;
                    time += 1;
                    stack.push((v, 0));
                } else if v != parent[u as usize] {
                    low[u as usize] = low[u as usize].min(disc[v as usize]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p as usize] = low[p as usize].min(low[u as usize]);
                    if low[u as usize] > disc[p as usize] {
                        bridges.push((p.min(u), p.max(u)));
                    }
                    if p != root && low[u as usize] >= disc[p as usize] {
                        artic.insert(p);
                    }
                }
            }
        }
        if root_children >= 2 {
            artic.insert(root);
        }
    }
    bridges.sort_unstable();
    let mut articulation_points: Vec<u32> = artic.into_iter().collect();
    articulation_points.sort_unstable();
    Connectivity {
        bridges,
        articulation_points,
    }
}

/// Whether the edge `{u, v}` is a bridge, by direct component counting
/// (used as the oracle in property tests; prefer [`analyze`] for bulk
/// queries).
///
/// # Panics
///
/// Panics if `{u, v}` is not an edge.
#[must_use]
pub fn is_bridge(g: &Graph, u: u32, v: u32) -> bool {
    assert!(g.has_edge(u, v), "bridge query needs an edge");
    let mut h = g.clone();
    h.remove_edge(u, v).expect("edge exists");
    let (_, before) = g.components();
    let (_, after) = h.components();
    after > before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn trees_are_all_bridges() {
        let mut rng = crate::test_rng(81);
        for _ in 0..10 {
            let g = generators::random_tree(20, &mut rng);
            let c = analyze(&g);
            assert_eq!(c.bridges.len(), g.m());
            // In a tree every internal (non-leaf) node articulates.
            let internal = (0..20u32).filter(|&u| g.degree(u) >= 2).count();
            assert_eq!(c.articulation_points.len(), internal);
        }
    }

    #[test]
    fn cliques_have_no_cut_structure() {
        let c = analyze(&generators::clique(6));
        assert!(c.bridges.is_empty());
        assert!(c.articulation_points.is_empty());
    }

    #[test]
    fn lowpoint_matches_component_oracle() {
        let mut rng = crate::test_rng(82);
        for _ in 0..25 {
            let g = generators::random_connected(12, 0.15, &mut rng);
            let c = analyze(&g);
            let bridge_set: std::collections::HashSet<(u32, u32)> =
                c.bridges.iter().copied().collect();
            for (u, v) in g.edges() {
                assert_eq!(
                    bridge_set.contains(&(u, v)),
                    is_bridge(&g, u, v),
                    "bridge disagreement on {{{u}, {v}}}"
                );
            }
        }
    }

    #[test]
    fn barbell_structure() {
        // Two triangles joined by one edge: that edge is the only bridge,
        // its endpoints are the articulation points.
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]).unwrap();
        let c = analyze(&g);
        assert_eq!(c.bridges, vec![(2, 3)]);
        assert_eq!(c.articulation_points, vec![2, 3]);
    }

    #[test]
    fn disconnected_graphs_are_handled() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3), (3, 4)]).unwrap();
        let c = analyze(&g);
        assert_eq!(c.bridges.len(), 3);
        assert_eq!(c.articulation_points, vec![3]);
    }

    #[test]
    fn deep_path_does_not_overflow() {
        let g = generators::path(50_000);
        let c = analyze(&g);
        assert_eq!(c.bridges.len(), 49_999);
    }
}
