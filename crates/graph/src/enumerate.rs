//! Exhaustive enumeration of small trees and graphs.
//!
//! The empirical Price-of-Anarchy experiments quantify over *all* trees (or
//! all connected graphs) with a given number of nodes. Rooted trees are
//! generated as canonical level sequences with the Beyer–Hedetniemi
//! successor algorithm; free trees are obtained by centroid-canonical
//! filtering; small connected graphs by edge-subset iteration with
//! isomorphism deduplication.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::iso::{canonical_tree_encoding, CanonicalSet};
use std::collections::HashSet;

/// Iterator over the canonical level sequences of all rooted trees on `n`
/// nodes (Beyer–Hedetniemi 1980). Levels start at 1 for the root.
///
/// # Examples
///
/// ```
/// use bncg_graph::enumerate::RootedTreeSequences;
///
/// // Rooted trees on 5 nodes: 9 of them.
/// assert_eq!(RootedTreeSequences::new(5).count(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct RootedTreeSequences {
    levels: Vec<u32>,
    started: bool,
    done: bool,
}

impl RootedTreeSequences {
    /// Starts the enumeration for trees on `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        RootedTreeSequences {
            levels: (1..=n as u32).collect(),
            started: false,
            done: n == 0,
        }
    }
}

impl Iterator for RootedTreeSequences {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(self.levels.clone());
        }
        // Successor: find the rightmost entry > 2, shrink it by repeating
        // the pattern from its new parent.
        let n = self.levels.len();
        let Some(p) = (0..n).rev().find(|&i| self.levels[i] > 2) else {
            self.done = true;
            return None;
        };
        let target = self.levels[p] - 1;
        let q = (0..p)
            .rev()
            .find(|&i| self.levels[i] == target)
            .expect("a parent level always exists to the left");
        for i in p..n {
            self.levels[i] = self.levels[i - (p - q)];
        }
        Some(self.levels.clone())
    }
}

/// Builds the rooted tree encoded by a canonical level sequence. Node ids
/// follow the sequence order; node 0 is the root.
///
/// # Errors
///
/// Returns [`GraphError::InvalidEncoding`] if the sequence is not a valid
/// level sequence (must start at 1 and each entry `L[i] ≥ 2` must have a
/// previous entry at level `L[i] − 1`).
pub fn tree_from_level_sequence(levels: &[u32]) -> Result<Graph, GraphError> {
    let n = levels.len();
    if n == 0 || levels[0] != 1 {
        return Err(GraphError::InvalidEncoding);
    }
    let mut g = Graph::new(n);
    let mut last_at_level: Vec<u32> = vec![u32::MAX; n + 2];
    last_at_level[1] = 0;
    for (i, &level) in levels.iter().enumerate().skip(1) {
        if level < 2 || level as usize > n {
            return Err(GraphError::InvalidEncoding);
        }
        let parent = last_at_level[level as usize - 1];
        if parent == u32::MAX {
            return Err(GraphError::InvalidEncoding);
        }
        g.add_edge(parent, i as u32)
            .map_err(|_| GraphError::InvalidEncoding)?;
        last_at_level[level as usize] = i as u32;
    }
    Ok(g)
}

/// Maximum `n` supported by [`free_trees`]; the count grows like `2.96^n`
/// and the centroid-filter pass touches every rooted tree.
pub const MAX_FREE_TREE_NODES: usize = 18;

/// All free (unlabeled) trees on `n` nodes, one representative per
/// isomorphism class.
///
/// # Errors
///
/// Returns [`GraphError::TooLarge`] if `n > MAX_FREE_TREE_NODES`.
///
/// # Examples
///
/// ```
/// use bncg_graph::enumerate::free_trees;
///
/// assert_eq!(free_trees(7)?.len(), 11);
/// assert_eq!(free_trees(10)?.len(), 106);
/// # Ok::<(), bncg_graph::GraphError>(())
/// ```
pub fn free_trees(n: usize) -> Result<Vec<Graph>, GraphError> {
    if n > MAX_FREE_TREE_NODES {
        return Err(GraphError::TooLarge {
            requested: n,
            max: MAX_FREE_TREE_NODES,
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut out = Vec::new();
    for levels in RootedTreeSequences::new(n) {
        let g = tree_from_level_sequence(&levels).expect("generated sequences are valid");
        let code = canonical_tree_encoding(&g);
        if seen.insert(code) {
            out.push(g);
        }
    }
    Ok(out)
}

/// Maximum `n` supported by [`connected_graphs`]: `2^{n(n−1)/2}` edge
/// subsets are scanned, which is about 2 million at `n = 7`.
pub const MAX_CONNECTED_GRAPH_NODES: usize = 7;

/// All connected graphs on `n` nodes up to isomorphism.
///
/// # Errors
///
/// Returns [`GraphError::TooLarge`] if `n > MAX_CONNECTED_GRAPH_NODES`.
///
/// # Examples
///
/// ```
/// use bncg_graph::enumerate::connected_graphs;
///
/// assert_eq!(connected_graphs(4)?.len(), 6);
/// assert_eq!(connected_graphs(5)?.len(), 21);
/// # Ok::<(), bncg_graph::GraphError>(())
/// ```
pub fn connected_graphs(n: usize) -> Result<Vec<Graph>, GraphError> {
    if n > MAX_CONNECTED_GRAPH_NODES {
        return Err(GraphError::TooLarge {
            requested: n,
            max: MAX_CONNECTED_GRAPH_NODES,
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    if n == 1 {
        return Ok(vec![Graph::new(1)]);
    }
    let pairs: Vec<(u32, u32)> = (0..n as u32)
        .flat_map(|u| (u + 1..n as u32).map(move |v| (u, v)))
        .collect();
    let num_pairs = pairs.len();
    let mut set = CanonicalSet::new();
    for mask in 0u64..1u64 << num_pairs {
        if !mask_is_connected(n, &pairs, mask) {
            continue;
        }
        let mut g = Graph::new(n);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            if mask >> i & 1 == 1 {
                g.add_edge(u, v).expect("mask edges are simple");
            }
        }
        set.insert(g);
    }
    let mut graphs = set.into_graphs();
    graphs.sort_by_key(|g| (g.m(), g.to_bitmask().expect("n ≤ 7 fits")));
    Ok(graphs)
}

/// Connectivity check on an edge-subset mask without materializing a graph.
fn mask_is_connected(n: usize, pairs: &[(u32, u32)], mask: u64) -> bool {
    let mut adj = [0u16; 16];
    for (i, &(u, v)) in pairs.iter().enumerate() {
        if mask >> i & 1 == 1 {
            adj[u as usize] |= 1 << v;
            adj[v as usize] |= 1 << u;
        }
    }
    let full: u16 = if n == 16 { u16::MAX } else { (1 << n) - 1 };
    let mut reached: u16 = 1;
    loop {
        let mut next = reached;
        let mut bits = reached;
        while bits != 0 {
            let u = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            next |= adj[u];
        }
        if next == reached {
            break;
        }
        reached = next;
    }
    reached == full
}

/// All connected graphs on `n` nodes with exactly `m` edges, up to
/// isomorphism.
///
/// # Errors
///
/// Returns [`GraphError::TooLarge`] if `n > MAX_CONNECTED_GRAPH_NODES`.
pub fn connected_graphs_with_edges(n: usize, m: usize) -> Result<Vec<Graph>, GraphError> {
    Ok(connected_graphs(n)?
        .into_iter()
        .filter(|g| g.m() == m)
        .collect())
}

/// Maximum `n` supported by [`graph_classes`] / [`connected_graph_classes`].
/// The vertex-extension walk is polynomial in the *class counts* rather
/// than the `2^{n(n−1)/2}` mask space, but the counts themselves explode
/// past this point (12 005 168 classes at n = 10).
pub const MAX_GRAPH_CLASS_NODES: usize = 10;

/// All graphs on `n` nodes up to isomorphism — connected or not — as
/// **canonical representatives** ([`crate::iso::canonical_form`]), sorted
/// by `(m, canonical graph6 key)`.
///
/// Built by vertex extension: every graph on `k + 1` nodes arises from a
/// graph on `k` nodes by adding one vertex with some neighbor subset, so
/// each level is generated from the previous level's classes and
/// deduplicated by canonical key. Unlike [`connected_graphs`]' mask scan
/// (capped at `n = 7`), this reaches `n = 10`.
///
/// # Errors
///
/// Returns [`GraphError::TooLarge`] if `n > MAX_GRAPH_CLASS_NODES`.
pub fn graph_classes(n: usize) -> Result<Vec<Graph>, GraphError> {
    if n > MAX_GRAPH_CLASS_NODES {
        return Err(GraphError::TooLarge {
            requested: n,
            max: MAX_GRAPH_CLASS_NODES,
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut level = vec![Graph::new(1)];
    for k in 1..n {
        let mut seen = std::collections::HashSet::new();
        let mut next = Vec::new();
        for parent in &level {
            for mask in 0u32..1u32 << k {
                let mut g = Graph::new(k + 1);
                for (u, v) in parent.edges() {
                    g.add_edge(u, v).expect("parent edges are simple");
                }
                for u in 0..k as u32 {
                    if mask >> u & 1 == 1 {
                        g.add_edge(u, k as u32)
                            .expect("new-vertex edges are simple");
                    }
                }
                let (canon, _) = crate::iso::canonical_form(&g);
                let key = crate::graph6::encode(&canon).expect("n ≤ 10 encodes");
                if seen.insert(key) {
                    next.push(canon);
                }
            }
        }
        level = next;
    }
    level.sort_by_key(|g| (g.m(), crate::graph6::encode(g).expect("n ≤ 10 encodes")));
    Ok(level)
}

/// All **connected** graphs on `n` nodes up to isomorphism, as canonical
/// representatives sorted by `(m, canonical graph6 key)` — the atlas
/// enumeration order. Same classes as [`connected_graphs`] where both are
/// defined, but reaches `n = 10` ([`MAX_GRAPH_CLASS_NODES`]).
///
/// # Errors
///
/// Returns [`GraphError::TooLarge`] if `n > MAX_GRAPH_CLASS_NODES`.
///
/// # Examples
///
/// ```
/// use bncg_graph::enumerate::connected_graph_classes;
///
/// assert_eq!(connected_graph_classes(5)?.len(), 21);
/// # Ok::<(), bncg_graph::GraphError>(())
/// ```
pub fn connected_graph_classes(n: usize) -> Result<Vec<Graph>, GraphError> {
    Ok(graph_classes(n)?
        .into_iter()
        .filter(Graph::is_connected)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// OEIS A000081: rooted trees on n nodes.
    const ROOTED_COUNTS: [usize; 11] = [0, 1, 1, 2, 4, 9, 20, 48, 115, 286, 719];
    /// OEIS A000055: free trees on n nodes.
    const FREE_COUNTS: [usize; 13] = [0, 1, 1, 1, 2, 3, 6, 11, 23, 47, 106, 235, 551];
    /// OEIS A001349-style: connected graphs on n nodes (n = 1..6).
    const CONNECTED_COUNTS: [usize; 7] = [0, 1, 1, 2, 6, 21, 112];

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn rooted_tree_counts_match_oeis() {
        for n in 1..=10 {
            assert_eq!(
                RootedTreeSequences::new(n).count(),
                ROOTED_COUNTS[n],
                "rooted count mismatch at n = {n}"
            );
        }
    }

    #[test]
    fn all_generated_sequences_are_trees() {
        for levels in RootedTreeSequences::new(7) {
            let g = tree_from_level_sequence(&levels).unwrap();
            assert!(g.is_tree());
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn free_tree_counts_match_oeis() {
        for n in 1..=12 {
            assert_eq!(
                free_trees(n).unwrap().len(),
                FREE_COUNTS[n],
                "free tree count mismatch at n = {n}"
            );
        }
    }

    #[test]
    fn free_trees_are_pairwise_non_isomorphic() {
        let trees = free_trees(8).unwrap();
        for (i, a) in trees.iter().enumerate() {
            assert!(a.is_tree());
            for b in trees.iter().skip(i + 1) {
                assert!(!crate::iso::are_isomorphic(a, b));
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn connected_graph_counts_match_oeis() {
        for n in 1..=6 {
            assert_eq!(
                connected_graphs(n).unwrap().len(),
                CONNECTED_COUNTS[n],
                "connected graph count mismatch at n = {n}"
            );
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn connected_graphs_include_tree_classes() {
        // Trees are exactly the connected graphs with n − 1 edges.
        for n in 2..=6 {
            let trees = connected_graphs_with_edges(n, n - 1).unwrap();
            assert_eq!(trees.len(), FREE_COUNTS[n]);
            assert!(trees.iter().all(Graph::is_tree));
        }
    }

    #[test]
    fn size_guards_fire() {
        assert!(matches!(
            free_trees(MAX_FREE_TREE_NODES + 1),
            Err(GraphError::TooLarge { .. })
        ));
        assert!(matches!(
            connected_graphs(MAX_CONNECTED_GRAPH_NODES + 1),
            Err(GraphError::TooLarge { .. })
        ));
    }

    #[test]
    fn level_sequence_validation() {
        assert!(tree_from_level_sequence(&[]).is_err());
        assert!(tree_from_level_sequence(&[2]).is_err());
        assert!(tree_from_level_sequence(&[1, 3]).is_err());
        assert!(tree_from_level_sequence(&[1, 2, 4]).is_err());
        let g = tree_from_level_sequence(&[1, 2, 3, 2]).unwrap();
        assert!(g.is_tree());
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn trivial_sizes() {
        assert!(free_trees(0).unwrap().is_empty());
        assert_eq!(free_trees(1).unwrap().len(), 1);
        assert_eq!(connected_graphs(1).unwrap().len(), 1);
        assert!(connected_graphs(0).unwrap().is_empty());
    }

    /// OEIS A000088: graphs on n nodes up to isomorphism (n = 0..8).
    const ALL_GRAPH_COUNTS: [usize; 9] = [1, 1, 2, 4, 11, 34, 156, 1044, 12346];
    /// OEIS A001349: connected graphs on n nodes (n = 0..8).
    const CONNECTED_CLASS_COUNTS: [usize; 9] = [1, 1, 1, 2, 6, 21, 112, 853, 11117];

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn graph_class_counts_match_oeis() {
        for n in 1..=7 {
            assert_eq!(
                graph_classes(n).unwrap().len(),
                ALL_GRAPH_COUNTS[n],
                "all-graph class count mismatch at n = {n}"
            );
            assert_eq!(
                connected_graph_classes(n).unwrap().len(),
                CONNECTED_CLASS_COUNTS[n],
                "connected class count mismatch at n = {n}"
            );
        }
    }

    #[test]
    fn graph_class_counts_match_oeis_at_n8() {
        // The extension level 7 → 8 canonicalizes ~134k graphs; kept as
        // its own test so the cheap counts above stay fast.
        assert_eq!(graph_classes(8).unwrap().len(), ALL_GRAPH_COUNTS[8]);
        assert_eq!(
            connected_graph_classes(8).unwrap().len(),
            CONNECTED_CLASS_COUNTS[8]
        );
    }

    #[test]
    fn graph_classes_match_mask_scan() {
        // Same isomorphism classes as the 2^{n(n−1)/2} mask scan where
        // both enumerations are defined.
        for n in 1..=6 {
            let by_extension: std::collections::BTreeSet<String> = connected_graph_classes(n)
                .unwrap()
                .iter()
                .map(crate::iso::canonical_key)
                .collect();
            let by_mask: std::collections::BTreeSet<String> = connected_graphs(n)
                .unwrap()
                .iter()
                .map(crate::iso::canonical_key)
                .collect();
            assert_eq!(by_extension, by_mask, "class mismatch at n = {n}");
        }
    }

    #[test]
    fn graph_classes_are_canonical_and_ordered() {
        let classes = connected_graph_classes(6).unwrap();
        let mut keys = Vec::new();
        for g in &classes {
            // Each representative is its own canonical form…
            assert_eq!(crate::iso::canonical_form(g).0, *g);
            keys.push((g.m(), crate::graph6::encode(g).unwrap()));
        }
        // …and the list is strictly sorted by (m, key): a deterministic,
        // duplicate-free enumeration order (the atlas build order).
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn graph_class_size_guard_fires() {
        assert!(matches!(
            graph_classes(MAX_GRAPH_CLASS_NODES + 1),
            Err(GraphError::TooLarge { .. })
        ));
    }
}
