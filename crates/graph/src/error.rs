//! Error types for the graph substrate.

use std::error::Error;
use std::fmt;

/// Errors raised by graph construction and mutation.
///
/// # Examples
///
/// ```
/// use bncg_graph::{Graph, GraphError};
///
/// let mut g = Graph::new(3);
/// assert_eq!(g.add_edge(0, 0), Err(GraphError::SelfLoop { node: 0 }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphError {
    /// A node id was at least the number of nodes in the graph.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// An edge `{u, u}` was requested; the model only allows simple graphs.
    SelfLoop {
        /// The node that would have been connected to itself.
        node: u32,
    },
    /// The edge to add already exists.
    DuplicateEdge {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
    /// The edge to remove does not exist.
    MissingEdge {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
    /// A tree was required but the graph is not a tree.
    NotATree,
    /// A connected graph was required but the graph is disconnected.
    NotConnected,
    /// An exhaustive routine was asked for an instance beyond its documented
    /// size guard.
    TooLarge {
        /// The requested size.
        requested: usize,
        /// The maximum supported size.
        max: usize,
    },
    /// A byte string could not be parsed as graph6.
    InvalidGraph6,
    /// A level sequence, degree sequence, or similar encoding was malformed.
    InvalidEncoding,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self loop at node {node} not allowed"),
            GraphError::DuplicateEdge { u, v } => write!(f, "edge {{{u}, {v}}} already present"),
            GraphError::MissingEdge { u, v } => write!(f, "edge {{{u}, {v}}} not present"),
            GraphError::NotATree => write!(f, "graph is not a tree"),
            GraphError::NotConnected => write!(f, "graph is not connected"),
            GraphError::TooLarge { requested, max } => {
                write!(
                    f,
                    "instance size {requested} exceeds supported maximum {max}"
                )
            }
            GraphError::InvalidGraph6 => write!(f, "invalid graph6 encoding"),
            GraphError::InvalidEncoding => write!(f, "invalid sequence encoding"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            GraphError::NodeOutOfRange { node: 7, n: 3 },
            GraphError::SelfLoop { node: 1 },
            GraphError::DuplicateEdge { u: 0, v: 1 },
            GraphError::MissingEdge { u: 0, v: 1 },
            GraphError::NotATree,
            GraphError::NotConnected,
            GraphError::TooLarge {
                requested: 9,
                max: 7,
            },
            GraphError::InvalidGraph6,
            GraphError::InvalidEncoding,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
