//! Deterministic and random graph generators used throughout the
//! reproduction: the social optima (star, clique), the paper's baseline
//! topologies (path, cycle, d-ary trees), and random instances for testing
//! and dynamics.

use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// The path `0 − 1 − ⋯ − (n−1)`.
///
/// # Examples
///
/// ```
/// use bncg_graph::generators::path;
/// let g = path(4);
/// assert!(g.is_tree());
/// assert_eq!(g.degree(0), 1);
/// assert_eq!(g.degree(1), 2);
/// ```
#[must_use]
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 1..n as u32 {
        g.add_edge(u - 1, u).expect("path edges are simple");
    }
    g
}

/// The cycle `C_n` (for `n ≥ 3`); for `n < 3` returns the path.
///
/// Cycles are the paper's example of non-tree Bilateral Strong Equilibria
/// for `α ∈ Θ(n²)` (Lemma 2.4).
#[must_use]
pub fn cycle(n: usize) -> Graph {
    let mut g = path(n);
    if n >= 3 {
        g.add_edge(0, n as u32 - 1).expect("closing edge is new");
    }
    g
}

/// The star with center `0` and `n − 1` leaves — the social optimum for
/// `α ≥ 1`.
#[must_use]
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 1..n as u32 {
        g.add_edge(0, u).expect("star edges are simple");
    }
    g
}

/// The complete graph `K_n` — the social optimum for `α < 1`.
#[must_use]
pub fn clique(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n as u32 {
        for v in u + 1..n as u32 {
            g.add_edge(u, v).expect("clique edges are simple");
        }
    }
    g
}

/// A complete `d`-ary tree of the given `depth`: every internal node has
/// exactly `d` children and all leaves sit at layer `depth`. Node `0` is the
/// root; children are laid out in BFS order.
///
/// # Panics
///
/// Panics if `d == 0`.
#[must_use]
pub fn complete_dary_tree(d: usize, depth: usize) -> Graph {
    assert!(d >= 1, "arity must be positive");
    // n = 1 + d + d² + ⋯ + d^depth
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= d;
        n += level;
    }
    let mut g = Graph::new(n);
    // BFS layout: children of node u are d·u + 1 .. d·u + d.
    for u in 0..n {
        for c in 1..=d {
            let child = d * u + c;
            if child < n {
                g.add_edge(u as u32, child as u32)
                    .expect("d-ary layout is simple");
            }
        }
    }
    g
}

/// An *almost complete* `d`-ary tree on exactly `n` nodes (Lemma 3.18):
/// nodes are filled in BFS order, so all layers except possibly the last are
/// full, and each agent pays for at most `d + 1` incident edges.
///
/// # Panics
///
/// Panics if `d == 0`.
#[must_use]
pub fn almost_complete_dary_tree(d: usize, n: usize) -> Graph {
    assert!(d >= 1, "arity must be positive");
    let mut g = Graph::new(n);
    for u in 1..n {
        let parent = (u - 1) / d;
        g.add_edge(parent as u32, u as u32)
            .expect("BFS layout is simple");
    }
    g
}

/// A spider: `legs` paths of length `leg_len` glued at a common center
/// (node `0`). Spiders realize the pairwise-stability PoA lower bound
/// shape (large distances at small edge counts).
#[must_use]
pub fn spider(legs: usize, leg_len: usize) -> Graph {
    let n = 1 + legs * leg_len;
    let mut g = Graph::new(n);
    let mut next = 1u32;
    for _ in 0..legs {
        let mut prev = 0u32;
        for _ in 0..leg_len {
            g.add_edge(prev, next).expect("spider edges are simple");
            prev = next;
            next += 1;
        }
    }
    g
}

/// A double star: two adjacent centers with `a` and `b` leaves respectively.
#[must_use]
pub fn double_star(a: usize, b: usize) -> Graph {
    let n = 2 + a + b;
    let mut g = Graph::new(n);
    g.add_edge(0, 1).expect("center edge is simple");
    for i in 0..a {
        g.add_edge(0, (2 + i) as u32).expect("leaf edge is simple");
    }
    for i in 0..b {
        g.add_edge(1, (2 + a + i) as u32)
            .expect("leaf edge is simple");
    }
    g
}

/// A broom: a path of length `handle` whose far end carries `bristles`
/// extra leaves.
#[must_use]
pub fn broom(handle: usize, bristles: usize) -> Graph {
    let n = handle + 1 + bristles;
    let mut g = Graph::new(n);
    for u in 1..=handle as u32 {
        g.add_edge(u - 1, u).expect("handle edge is simple");
    }
    for i in 0..bristles {
        g.add_edge(handle as u32, (handle + 1 + i) as u32)
            .expect("bristle edge is simple");
    }
    g
}

/// A caterpillar: a spine path of `spine` nodes, where spine node `i`
/// carries `legs[i]` pendant leaves. Caterpillars are the tree shapes the
/// PS-PoA worst cases concentrate on at moderate α.
///
/// # Panics
///
/// Panics if `legs.len() != spine`.
#[must_use]
pub fn caterpillar(spine: usize, legs: &[usize]) -> Graph {
    assert_eq!(legs.len(), spine, "one leg count per spine node");
    let n = spine + legs.iter().sum::<usize>();
    let mut g = Graph::new(n);
    for u in 1..spine as u32 {
        g.add_edge(u - 1, u).expect("spine edge is simple");
    }
    let mut next = spine as u32;
    for (i, &count) in legs.iter().enumerate() {
        for _ in 0..count {
            g.add_edge(i as u32, next).expect("leg edge is simple");
            next += 1;
        }
    }
    g
}

/// The complete bipartite graph `K_{a,b}` with parts `0..a` and `a..a+b`.
#[must_use]
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for u in 0..a as u32 {
        for v in a as u32..(a + b) as u32 {
            g.add_edge(u, v).expect("bipartite edge is simple");
        }
    }
    g
}

/// The wheel `W_n`: a hub (node 0) joined to every node of a cycle on
/// `n − 1` nodes. Requires `n ≥ 4`.
///
/// # Panics
///
/// Panics if `n < 4`.
#[must_use]
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "a wheel needs a hub plus a 3-cycle");
    let rim = n - 1;
    let mut g = Graph::new(n);
    for i in 0..rim as u32 {
        g.add_edge(0, 1 + i).expect("spoke is simple");
        g.add_edge(1 + i, 1 + (i + 1) % rim as u32)
            .expect("rim edge is simple");
    }
    g
}

/// A uniformly random labeled tree on `n` nodes via a random Prüfer
/// sequence.
///
/// # Examples
///
/// ```
/// use bncg_graph::generators::random_tree;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
/// let g = random_tree(20, &mut rng);
/// assert!(g.is_tree());
/// ```
#[must_use]
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    if n <= 1 {
        return Graph::new(n);
    }
    if n == 2 {
        return path(2);
    }
    let seq: Vec<u32> = (0..n - 2).map(|_| rng.gen_range(0..n as u32)).collect();
    tree_from_pruefer(n, &seq)
}

/// Decodes a Prüfer sequence of length `n − 2` into the labeled tree it
/// encodes.
///
/// # Panics
///
/// Panics if `n < 2`, the sequence length is not `n − 2`, or an entry is out
/// of range.
#[must_use]
pub fn tree_from_pruefer(n: usize, seq: &[u32]) -> Graph {
    assert!(n >= 2, "Prüfer decoding needs n ≥ 2");
    assert_eq!(seq.len(), n - 2, "Prüfer sequence must have length n − 2");
    let mut degree = vec![1u32; n];
    for &s in seq {
        assert!((s as usize) < n, "Prüfer entry out of range");
        degree[s as usize] += 1;
    }
    let mut g = Graph::new(n);
    // Min-leaf selection via an index scan pointer plus a binary heap would
    // be overkill at reproduction sizes; use a simple BinaryHeap of leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = (0..n as u32)
        .filter(|&u| degree[u as usize] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &s in seq {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("a leaf always exists");
        g.add_edge(leaf, s).expect("Prüfer decoding is simple");
        degree[s as usize] -= 1;
        if degree[s as usize] == 1 {
            leaves.push(std::cmp::Reverse(s));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(b) = leaves.pop().expect("two leaves remain");
    g.add_edge(a, b).expect("final Prüfer edge is simple");
    g
}

/// An Erdős–Rényi graph `G(n, p)`.
#[must_use]
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n as u32 {
        for v in u + 1..n as u32 {
            if rng.gen_bool(p) {
                g.add_edge(u, v).expect("fresh pair");
            }
        }
    }
    g
}

/// A random connected graph: a uniform random spanning tree plus each
/// remaining pair independently with probability `extra_p`.
#[must_use]
pub fn random_connected<R: Rng + ?Sized>(n: usize, extra_p: f64, rng: &mut R) -> Graph {
    let mut g = random_tree(n, rng);
    let non_edges: Vec<(u32, u32)> = g.non_edges().collect();
    for (u, v) in non_edges {
        if rng.gen_bool(extra_p) {
            g.add_edge(u, v).expect("non-edge becomes edge");
        }
    }
    g
}

/// A random permutation of `0..n`.
#[must_use]
pub fn random_permutation<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(rng);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter, DistanceMatrix};
    use crate::tree::tree_medians;

    #[test]
    fn basic_shapes() {
        assert!(path(7).is_tree());
        assert_eq!(cycle(7).m(), 7);
        assert_eq!(cycle(2).m(), 1);
        assert!(star(8).is_tree());
        assert_eq!(clique(6).m(), 15);
        assert_eq!(diameter(&clique(6)), Some(1));
        assert_eq!(diameter(&star(6)), Some(2));
    }

    #[test]
    fn complete_dary_tree_shape() {
        let g = complete_dary_tree(2, 3); // 1 + 2 + 4 + 8 = 15 nodes
        assert_eq!(g.n(), 15);
        assert!(g.is_tree());
        assert_eq!(g.degree(0), 2);
        let d = DistanceMatrix::new(&g);
        assert_eq!(d.eccentricity(0), Some(3));
        // ternary
        let g3 = complete_dary_tree(3, 2); // 1 + 3 + 9 = 13
        assert_eq!(g3.n(), 13);
        assert_eq!(g3.degree(0), 3);
    }

    #[test]
    fn almost_complete_dary_tree_degrees() {
        for d in 2..5usize {
            for n in 1..40usize {
                let g = almost_complete_dary_tree(d, n);
                assert!(g.is_tree() || n == 0);
                for u in 0..n as u32 {
                    // Lemma 3.18: at most d children plus one parent.
                    assert!(g.degree(u) <= d + 1);
                }
            }
        }
    }

    #[test]
    fn almost_complete_tree_depth_is_logarithmic() {
        let g = almost_complete_dary_tree(2, 1000);
        let d = DistanceMatrix::new(&g);
        // depth ≤ ⌈log2(1001)⌉ = 10
        assert!(d.eccentricity(0).unwrap() <= 10);
    }

    #[test]
    fn spider_and_broom_shapes() {
        let s = spider(3, 4);
        assert_eq!(s.n(), 13);
        assert!(s.is_tree());
        assert_eq!(s.degree(0), 3);
        assert_eq!(diameter(&s), Some(8));
        assert_eq!(tree_medians(&s).unwrap(), vec![0]);

        let b = broom(3, 4);
        assert_eq!(b.n(), 8);
        assert!(b.is_tree());
        assert_eq!(b.degree(3), 5);
    }

    #[test]
    fn double_star_shape() {
        let g = double_star(3, 2);
        assert_eq!(g.n(), 7);
        assert!(g.is_tree());
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(1), 3);
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(3, &[2, 0, 1]);
        assert_eq!(g.n(), 6);
        assert!(g.is_tree());
        assert_eq!(g.degree(0), 3); // spine end with 2 legs
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 2);
        // Degenerate: no legs at all is just a path.
        let p = caterpillar(4, &[0, 0, 0, 0]);
        assert!(crate::iso::are_isomorphic(&p, &path(4)));
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 6);
        assert!(!g.has_edge(0, 1)); // same side
        assert!(g.has_edge(0, 2));
        assert_eq!(diameter(&g), Some(2));
        // K_{1,b} is the star.
        assert!(crate::iso::are_isomorphic(
            &complete_bipartite(1, 4),
            &star(5)
        ));
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(6);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 10); // 5 spokes + 5 rim edges
        assert_eq!(g.degree(0), 5);
        assert_eq!(diameter(&g), Some(2));
        // Minimum wheel is K4.
        assert!(crate::iso::are_isomorphic(&wheel(4), &clique(4)));
    }

    #[test]
    fn complement_and_degree_sequence() {
        let g = star(5);
        assert_eq!(g.degree_sequence(), vec![4, 1, 1, 1, 1]);
        let c = g.complement();
        assert_eq!(c.degree_sequence(), vec![3, 3, 3, 3, 0]);
        assert_eq!(c.complement(), g);
    }

    #[test]
    fn pruefer_decoding_matches_known_example() {
        // Classic example: sequence (3, 3, 3, 4) on 6 nodes gives a tree
        // where 3 has degree 4 and 4 has degree 2.
        let g = tree_from_pruefer(6, &[3, 3, 3, 4]);
        assert!(g.is_tree());
        assert_eq!(g.degree(3), 4);
        assert_eq!(g.degree(4), 2);
    }

    #[test]
    fn random_trees_are_trees() {
        let mut rng = crate::test_rng(99);
        for n in [1usize, 2, 3, 10, 57] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.n(), n);
            if n >= 1 {
                assert!(g.is_tree());
            }
        }
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = crate::test_rng(5);
        for _ in 0..20 {
            let g = random_connected(30, 0.1, &mut rng);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = crate::test_rng(1);
        assert_eq!(gnp(10, 0.0, &mut rng).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).m(), 45);
    }

    #[test]
    fn random_permutation_is_permutation() {
        let mut rng = crate::test_rng(2);
        let p = random_permutation(20, &mut rng);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20u32).collect::<Vec<_>>());
    }
}
