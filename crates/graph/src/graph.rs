//! The core undirected simple-graph type.

use crate::error::GraphError;

/// An undirected simple graph over nodes `0..n` with sorted adjacency lists.
///
/// This is the substrate every game-theoretic structure in the reproduction
/// is built on. Nodes are dense `u32` ids; edges are unordered pairs of
/// distinct nodes. The representation keeps each neighbor list sorted so that
/// adjacency tests are `O(log deg)` and edge iteration is deterministic.
///
/// # Examples
///
/// ```
/// use bncg_graph::Graph;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1).unwrap();
/// g.add_edge(1, 2).unwrap();
/// g.add_edge(2, 3).unwrap();
/// assert!(g.is_tree());
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(2, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    m: usize,
}

/// FNV-1a offset basis for the stable fingerprints.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a step over the little-endian bytes of `v` — the stable
/// 64-bit hash primitive behind [`Graph::fingerprint`] (and the game
/// layer's instance binding). Deterministic across platforms, processes,
/// and compiler versions, unlike `std`'s `DefaultHasher`.
#[must_use]
pub fn fnv1a_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Graph {
    /// Creates an edgeless graph on `n` nodes.
    ///
    /// # Examples
    ///
    /// ```
    /// use bncg_graph::Graph;
    /// let g = Graph::new(5);
    /// assert_eq!(g.n(), 5);
    /// assert_eq!(g.m(), 0);
    /// ```
    #[must_use]
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Builds a graph on `n` nodes from an edge list.
    ///
    /// # Errors
    ///
    /// Returns an error if any endpoint is out of range, an edge is a self
    /// loop, or an edge appears twice.
    ///
    /// # Examples
    ///
    /// ```
    /// use bncg_graph::Graph;
    /// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
    /// assert_eq!(g.m(), 2);
    /// # Ok::<(), bncg_graph::GraphError>(())
    /// ```
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// A 64-bit fingerprint of the node count and the canonical (sorted)
    /// edge list — the labelled graph's identity in `O(1)` memory, for
    /// visited-state sets (round-robin cycle detection) and for binding
    /// resume tokens to the instance they were issued for. FNV-1a, so
    /// the value is **stable across platforms, processes, and Rust
    /// toolchains** (unlike `DefaultHasher`) — serialized tokens keep
    /// resolving on any replica. Two graphs collide with probability
    /// ≈ 2⁻⁶⁴; isomorphic but differently labelled graphs are *not*
    /// identified.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a_u64(FNV_OFFSET, self.n() as u64);
        for (u, v) in self.edges() {
            h = fnv1a_u64(h, u64::from(u) << 32 | u64::from(v));
        }
        h
    }

    /// Degree of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// The sorted neighbor list of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// Whether the edge `{u, v}` is present. Returns `false` for `u == v`
    /// and for out-of-range endpoints.
    #[must_use]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if u == v || u as usize >= self.n() || v as usize >= self.n() {
            return false;
        }
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    fn check_endpoints(&self, u: u32, v: u32) -> Result<(), GraphError> {
        let n = self.n();
        if u as usize >= n {
            return Err(GraphError::NodeOutOfRange { node: u, n });
        }
        if v as usize >= n {
            return Err(GraphError::NodeOutOfRange { node: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        Ok(())
    }

    /// Adds the edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints, a self loop, or if the
    /// edge already exists.
    pub fn add_edge(&mut self, u: u32, v: u32) -> Result<(), GraphError> {
        self.check_endpoints(u, v)?;
        let pos_v = match self.adj[u as usize].binary_search(&v) {
            Ok(_) => return Err(GraphError::DuplicateEdge { u, v }),
            Err(pos) => pos,
        };
        self.adj[u as usize].insert(pos_v, v);
        let pos_u = self.adj[v as usize]
            .binary_search(&u)
            .expect_err("edge set must stay symmetric");
        self.adj[v as usize].insert(pos_u, u);
        self.m += 1;
        Ok(())
    }

    /// Removes the edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints, a self loop, or if the
    /// edge does not exist.
    pub fn remove_edge(&mut self, u: u32, v: u32) -> Result<(), GraphError> {
        self.check_endpoints(u, v)?;
        let pos_v = self.adj[u as usize]
            .binary_search(&v)
            .map_err(|_| GraphError::MissingEdge { u, v })?;
        self.adj[u as usize].remove(pos_v);
        let pos_u = self.adj[v as usize]
            .binary_search(&u)
            .expect("edge set must stay symmetric");
        self.adj[v as usize].remove(pos_u);
        self.m -= 1;
        Ok(())
    }

    /// Toggles the edge `{u, v}`: adds it if absent, removes it if present.
    /// Returns `true` if the edge is present after the call.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints or a self loop.
    pub fn toggle_edge(&mut self, u: u32, v: u32) -> Result<bool, GraphError> {
        self.check_endpoints(u, v)?;
        if self.has_edge(u, v) {
            self.remove_edge(u, v)?;
            Ok(false)
        } else {
            self.add_edge(u, v)?;
            Ok(true)
        }
    }

    /// Iterates over all edges as pairs `(u, v)` with `u < v`, ordered
    /// lexicographically.
    ///
    /// # Examples
    ///
    /// ```
    /// use bncg_graph::Graph;
    /// let g = Graph::from_edges(3, [(2, 1), (0, 2)])?;
    /// let edges: Vec<_> = g.edges().collect();
    /// assert_eq!(edges, vec![(0, 2), (1, 2)]);
    /// # Ok::<(), bncg_graph::GraphError>(())
    /// ```
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as u32;
            nbrs.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterates over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = u32> {
        0..self.n() as u32
    }

    /// Iterates over all unordered non-adjacent pairs `(u, v)` with `u < v`,
    /// i.e. the edges of the complement graph.
    pub fn non_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let n = self.n() as u32;
        (0..n).flat_map(move |u| {
            (u + 1..n)
                .filter(move |&v| !self.has_edge(u, v))
                .map(move |v| (u, v))
        })
    }

    /// Whether the graph is connected. The empty graph (`n == 0`) counts as
    /// connected.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Whether the graph is a tree (connected with `n − 1` edges). The empty
    /// graph is not a tree; a single node is.
    #[must_use]
    pub fn is_tree(&self) -> bool {
        self.n() >= 1 && self.m == self.n() - 1 && self.is_connected()
    }

    /// Returns the connected component ids for each node, and the number of
    /// components. Component ids are assigned in order of their smallest
    /// node.
    #[must_use]
    pub fn components(&self) -> (Vec<u32>, usize) {
        let n = self.n();
        let mut comp = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut stack = Vec::new();
        for start in 0..n as u32 {
            if comp[start as usize] != u32::MAX {
                continue;
            }
            comp[start as usize] = next;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for &v in self.neighbors(u) {
                    if comp[v as usize] == u32::MAX {
                        comp[v as usize] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        (comp, next as usize)
    }

    /// Relabels the graph by a permutation: node `u` of `self` becomes node
    /// `perm[u]` of the result.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    #[must_use]
    pub fn relabeled(&self, perm: &[u32]) -> Graph {
        assert_eq!(perm.len(), self.n(), "permutation length must equal n");
        let mut check = vec![false; self.n()];
        for &p in perm {
            assert!(
                (p as usize) < self.n() && !check[p as usize],
                "perm must be a permutation of 0..n"
            );
            check[p as usize] = true;
        }
        let mut g = Graph::new(self.n());
        for (u, v) in self.edges() {
            g.add_edge(perm[u as usize], perm[v as usize])
                .expect("relabeling a simple graph stays simple");
        }
        g
    }

    /// Returns the subgraph induced by `keep` together with the mapping from
    /// old node ids to new ones (`u32::MAX` for dropped nodes).
    #[must_use]
    pub fn induced_subgraph(&self, keep: &[u32]) -> (Graph, Vec<u32>) {
        let mut map = vec![u32::MAX; self.n()];
        for (new, &old) in keep.iter().enumerate() {
            map[old as usize] = new as u32;
        }
        let mut g = Graph::new(keep.len());
        for (u, v) in self.edges() {
            let (nu, nv) = (map[u as usize], map[v as usize]);
            if nu != u32::MAX && nv != u32::MAX {
                g.add_edge(nu, nv).expect("induced subgraph stays simple");
            }
        }
        (g, map)
    }

    /// The complement graph: same nodes, exactly the non-edges.
    ///
    /// # Examples
    ///
    /// ```
    /// use bncg_graph::{generators, Graph};
    /// let g = generators::path(4);
    /// let c = g.complement();
    /// assert_eq!(g.m() + c.m(), 4 * 3 / 2);
    /// assert!(c.has_edge(0, 2));
    /// assert!(!c.has_edge(0, 1));
    /// ```
    #[must_use]
    pub fn complement(&self) -> Graph {
        let mut g = Graph::new(self.n());
        for (u, v) in self.non_edges() {
            g.add_edge(u, v).expect("non-edges are simple");
        }
        g
    }

    /// The sorted (descending) degree sequence.
    #[must_use]
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut degrees: Vec<usize> = (0..self.n() as u32).map(|u| self.degree(u)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        degrees
    }

    /// Packs the upper-triangular adjacency into a bitmask, little-endian in
    /// lexicographic pair order. Only valid for `n ≤ 11` (55 pairs ≤ 64 bits).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::TooLarge`] for `n > 11`.
    pub fn to_bitmask(&self) -> Result<u64, GraphError> {
        let n = self.n();
        if n > 11 {
            return Err(GraphError::TooLarge {
                requested: n,
                max: 11,
            });
        }
        let mut mask = 0u64;
        for (u, v) in self.edges() {
            mask |= 1u64 << pair_index(n, u, v);
        }
        Ok(mask)
    }

    /// Rebuilds a graph from a bitmask produced by [`Graph::to_bitmask`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::TooLarge`] for `n > 11`.
    pub fn from_bitmask(n: usize, mask: u64) -> Result<Graph, GraphError> {
        if n > 11 {
            return Err(GraphError::TooLarge {
                requested: n,
                max: 11,
            });
        }
        let mut g = Graph::new(n);
        let mut idx = 0u32;
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                if mask >> idx & 1 == 1 {
                    g.add_edge(u, v).expect("bitmask encodes a simple graph");
                }
                idx += 1;
            }
        }
        Ok(g)
    }
}

/// Index of the unordered pair `{u, v}` (with `u < v`) in lexicographic
/// order among all pairs of `0..n`.
#[must_use]
pub fn pair_index(n: usize, u: u32, v: u32) -> u32 {
    let (u, v) = if u < v { (u, v) } else { (v, u) };
    let (n, u, v) = (n as u64, u as u64, v as u64);
    (u * (2 * n - u - 1) / 2 + (v - u - 1)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fingerprint is a documented-stable value: resume tokens
    /// serialized by one process must resolve in another, so the hash
    /// may never drift with toolchain or platform. P5's value is pinned.
    #[test]
    fn fingerprint_is_stable_and_edge_order_independent() {
        let mut a = Graph::new(5);
        let mut b = Graph::new(5);
        for &(u, v) in &[(0u32, 1u32), (1, 2), (2, 3), (3, 4)] {
            a.add_edge(u, v).unwrap();
        }
        for &(u, v) in &[(3u32, 4u32), (1, 2), (0, 1), (2, 3)] {
            b.add_edge(u, v).unwrap();
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), 14972715144986967940);
        b.remove_edge(3, 4).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(3, 1).unwrap();
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(1, 3));
        g.remove_edge(1, 3).unwrap();
        assert_eq!(g.m(), 1);
        assert!(!g.has_edge(1, 3));
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = Graph::new(3);
        assert_eq!(
            g.add_edge(0, 3),
            Err(GraphError::NodeOutOfRange { node: 3, n: 3 })
        );
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
        g.add_edge(0, 1).unwrap();
        assert_eq!(
            g.add_edge(1, 0),
            Err(GraphError::DuplicateEdge { u: 1, v: 0 })
        );
        assert_eq!(
            g.remove_edge(1, 2),
            Err(GraphError::MissingEdge { u: 1, v: 2 })
        );
    }

    #[test]
    fn toggle_edge_flips_presence() {
        let mut g = Graph::new(3);
        assert!(g.toggle_edge(0, 2).unwrap());
        assert!(g.has_edge(0, 2));
        assert!(!g.toggle_edge(0, 2).unwrap());
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn connectivity_and_tree_detection() {
        let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(path.is_connected());
        assert!(path.is_tree());

        let cycle = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert!(cycle.is_connected());
        assert!(!cycle.is_tree());

        let split = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!split.is_connected());
        assert!(!split.is_tree());

        assert!(Graph::new(1).is_tree());
        assert!(!Graph::new(0).is_tree());
        assert!(Graph::new(0).is_connected());
    }

    #[test]
    fn components_are_labeled_by_smallest_node() {
        let g = Graph::from_edges(5, [(1, 3), (2, 4)]).unwrap();
        let (comp, count) = g.components();
        assert_eq!(count, 3);
        assert_eq!(comp[0], 0);
        assert_eq!(comp[1], 1);
        assert_eq!(comp[3], 1);
        assert_eq!(comp[2], 2);
        assert_eq!(comp[4], 2);
    }

    #[test]
    fn non_edges_complement_edges() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let non: Vec<_> = g.non_edges().collect();
        assert_eq!(non, vec![(0, 2), (0, 3), (1, 2), (1, 3)]);
        let total = g.edges().count() + non.len();
        assert_eq!(total, 4 * 3 / 2);
    }

    #[test]
    fn relabeled_preserves_structure() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let h = g.relabeled(&[2, 0, 1]);
        assert!(h.has_edge(2, 0));
        assert!(h.has_edge(0, 1));
        assert!(!h.has_edge(2, 1));
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let (sub, map) = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 1);
        assert!(sub.has_edge(map[1], map[2]));
        assert_eq!(map[0], u32::MAX);
    }

    #[test]
    fn bitmask_roundtrip() {
        let g = Graph::from_edges(5, [(0, 4), (1, 2), (3, 4)]).unwrap();
        let mask = g.to_bitmask().unwrap();
        let h = Graph::from_bitmask(5, mask).unwrap();
        assert_eq!(g, h);
        assert!(Graph::new(12).to_bitmask().is_err());
    }

    #[test]
    fn pair_index_is_lexicographic() {
        let n = 5;
        let mut expected = 0;
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                assert_eq!(pair_index(n, u, v), expected);
                assert_eq!(pair_index(n, v, u), expected);
                expected += 1;
            }
        }
    }
}
