//! The standard `graph6` text encoding for undirected graphs, used to log
//! witnesses from experiments in a form other tools (nauty, SageMath,
//! networkx) can read back.

use crate::error::GraphError;
use crate::graph::Graph;

/// Encodes a graph in graph6 format (supports `n ≤ 62` directly and
/// `n ≤ 258047` via the long form).
///
/// # Errors
///
/// Returns [`GraphError::TooLarge`] for `n > 258047`.
///
/// # Examples
///
/// ```
/// use bncg_graph::{generators, graph6};
///
/// // K4 is "C~" in graph6.
/// assert_eq!(graph6::encode(&generators::clique(4))?, "C~");
/// # Ok::<(), bncg_graph::GraphError>(())
/// ```
pub fn encode(g: &Graph) -> Result<String, GraphError> {
    let n = g.n();
    let mut bytes = Vec::new();
    if n <= 62 {
        bytes.push(n as u8 + 63);
    } else if n <= 258_047 {
        bytes.push(126);
        bytes.push(((n >> 12) & 63) as u8 + 63);
        bytes.push(((n >> 6) & 63) as u8 + 63);
        bytes.push((n & 63) as u8 + 63);
    } else {
        return Err(GraphError::TooLarge {
            requested: n,
            max: 258_047,
        });
    }
    // Column-major upper triangle: bit (u, v) for v = 1..n, u = 0..v.
    let mut acc = 0u8;
    let mut nbits = 0u8;
    for v in 1..n as u32 {
        for u in 0..v {
            acc = (acc << 1) | u8::from(g.has_edge(u, v));
            nbits += 1;
            if nbits == 6 {
                bytes.push(acc + 63);
                acc = 0;
                nbits = 0;
            }
        }
    }
    if nbits > 0 {
        acc <<= 6 - nbits;
        bytes.push(acc + 63);
    }
    Ok(String::from_utf8(bytes).expect("graph6 bytes are printable ASCII"))
}

/// Decodes a graph6 string.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGraph6`] on malformed input.
///
/// # Examples
///
/// ```
/// use bncg_graph::graph6;
///
/// let g = graph6::decode("C~")?; // K4
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 6);
/// # Ok::<(), bncg_graph::GraphError>(())
/// ```
pub fn decode(s: &str) -> Result<Graph, GraphError> {
    let bytes = s.as_bytes();
    if bytes.is_empty() {
        return Err(GraphError::InvalidGraph6);
    }
    let (n, mut idx) = if bytes[0] == 126 {
        if bytes.len() < 4 || bytes[1] == 126 {
            return Err(GraphError::InvalidGraph6);
        }
        let mut n = 0usize;
        for &b in &bytes[1..4] {
            if !(63..=126).contains(&b) {
                return Err(GraphError::InvalidGraph6);
            }
            n = (n << 6) | (b - 63) as usize;
        }
        (n, 4usize)
    } else {
        if !(63..=126).contains(&bytes[0]) {
            return Err(GraphError::InvalidGraph6);
        }
        ((bytes[0] - 63) as usize, 1usize)
    };
    let num_pairs = n * n.saturating_sub(1) / 2;
    let needed = num_pairs.div_ceil(6);
    if bytes.len() != idx + needed {
        return Err(GraphError::InvalidGraph6);
    }
    let mut g = Graph::new(n);
    let mut bit = 0usize;
    let mut current = 0u8;
    let mut remaining = 0u8;
    for v in 1..n as u32 {
        for u in 0..v {
            if remaining == 0 {
                let b = bytes[idx];
                if !(63..=126).contains(&b) {
                    return Err(GraphError::InvalidGraph6);
                }
                current = b - 63;
                remaining = 6;
                idx += 1;
            }
            if current >> (remaining - 1) & 1 == 1 {
                g.add_edge(u, v).map_err(|_| GraphError::InvalidGraph6)?;
            }
            remaining -= 1;
            bit += 1;
        }
    }
    debug_assert_eq!(bit, num_pairs);
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn known_encodings() {
        // From the nauty format documentation.
        assert_eq!(encode(&generators::clique(4)).unwrap(), "C~");
        assert_eq!(encode(&Graph::new(0)).unwrap(), "?");
        assert_eq!(encode(&Graph::new(1)).unwrap(), "@");
        // P4 (path on 4 nodes 0-1-2-3) is "CF" ... verify via roundtrip
        // rather than a memorized constant:
        let p4 = generators::path(4);
        let enc = encode(&p4).unwrap();
        assert_eq!(decode(&enc).unwrap(), p4);
    }

    #[test]
    fn roundtrip_random_graphs() {
        let mut rng = crate::test_rng(13);
        for n in [0usize, 1, 2, 5, 12, 40, 63, 80] {
            let g = generators::gnp(n, 0.3, &mut rng);
            let enc = encode(&g).unwrap();
            assert_eq!(decode(&enc).unwrap(), g, "roundtrip failed for n = {n}");
        }
    }

    #[test]
    fn roundtrip_over_every_enumerated_class() {
        // decode ∘ encode = id over every connected isomorphism class up
        // to n = 8 (11 117 + 853 + … graphs) — the atlas keys each class
        // by its canonical graph6 string, so the round-trip must be
        // exact on exactly this population. n = 8 rides in the same
        // sweep as the smaller sizes; the enumeration is the slow part,
        // the codec is microseconds.
        for n in 1..=8usize {
            let classes = crate::enumerate::connected_graph_classes(n).unwrap();
            for g in &classes {
                let enc = encode(g).unwrap();
                assert_eq!(
                    decode(&enc).unwrap(),
                    *g,
                    "decode ∘ encode diverged on an n = {n} class ({enc:?})"
                );
            }
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode("").is_err());
        assert!(decode("\u{7f}").is_err());
        assert!(decode("C").is_err()); // truncated K4-sized body
        assert!(decode("C~~").is_err()); // trailing junk
    }

    #[test]
    fn long_form_roundtrip() {
        let g = generators::path(100);
        let enc = encode(&g).unwrap();
        assert_eq!(enc.as_bytes()[0], 126);
        assert_eq!(decode(&enc).unwrap(), g);
    }
}
