//! Graph isomorphism, invariant fingerprints, and canonical tree encodings.
//!
//! The enumeration experiments need to deduplicate isomorphic graphs and the
//! witness searches need to report *one* representative per isomorphism
//! class. For trees we use the linear-time AHU encoding rooted at the
//! centroid; for general (small) graphs a distance-profile fingerprint
//! prefilter plus a backtracking isomorphism test.

use crate::graph::Graph;
use crate::traversal::DistanceMatrix;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The AHU canonical encoding of a tree rooted at `root`: a balanced-paren
/// style byte string that two rooted trees share iff they are isomorphic as
/// rooted trees.
///
/// # Panics
///
/// Panics if `g` is not a tree or `root` is out of range.
#[must_use]
pub fn ahu_encoding(g: &Graph, root: u32) -> Vec<u8> {
    assert!(g.is_tree(), "AHU encoding requires a tree");
    // Iterative post-order: children encodings are sorted and concatenated.
    fn encode(g: &Graph, u: u32, parent: u32) -> Vec<u8> {
        let mut child_codes: Vec<Vec<u8>> = g
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&v| v != parent)
            .map(|v| encode(g, v, u))
            .collect();
        child_codes.sort();
        let mut code = Vec::with_capacity(2 + child_codes.iter().map(Vec::len).sum::<usize>());
        code.push(b'(');
        for c in child_codes {
            code.extend_from_slice(&c);
        }
        code.push(b')');
        code
    }
    encode(g, root, root)
}

/// The centroid(s) of a tree: nodes whose removal leaves components of size
/// at most `n/2`. Every tree has one or two centroids (two are adjacent).
/// For trees these coincide with the 1-medians (Jordan), which the tree
/// module exposes via distance sums; this is the component-size definition
/// used by the paper.
///
/// # Panics
///
/// Panics if `g` is not a tree.
#[must_use]
pub fn tree_centroids(g: &Graph) -> Vec<u32> {
    assert!(g.is_tree(), "centroid requires a tree");
    let n = g.n();
    if n == 1 {
        return vec![0];
    }
    let t = crate::tree::RootedTree::new(g, 0).expect("validated tree");
    let mut centroids = Vec::new();
    for u in 0..n as u32 {
        let mut max_comp = n as u32 - t.subtree_size(u);
        for &c in t.children(u) {
            max_comp = max_comp.max(t.subtree_size(c));
        }
        if u64::from(max_comp) * 2 <= n as u64 {
            centroids.push(u);
        }
    }
    centroids
}

/// A canonical byte string for a *free* tree: the minimum AHU encoding over
/// its centroid(s). Two trees are isomorphic iff their canonical encodings
/// are equal.
///
/// # Panics
///
/// Panics if `g` is not a tree.
///
/// # Examples
///
/// ```
/// use bncg_graph::{generators, iso::canonical_tree_encoding};
///
/// let a = generators::path(5);
/// // The same path with scrambled labels.
/// let b = a.relabeled(&[4, 2, 0, 1, 3]);
/// assert_eq!(canonical_tree_encoding(&a), canonical_tree_encoding(&b));
/// ```
#[must_use]
pub fn canonical_tree_encoding(g: &Graph) -> Vec<u8> {
    let centroids = tree_centroids(g);
    centroids
        .iter()
        .map(|&c| ahu_encoding(g, c))
        .min()
        .expect("tree has a centroid")
}

/// An isomorphism-invariant fingerprint of a connected graph: hash of the
/// sorted multiset of per-node profiles, where a node's profile is its
/// sorted distance-frequency vector. Equal fingerprints are necessary but
/// not sufficient for isomorphism — use [`are_isomorphic`] to confirm.
#[must_use]
pub fn invariant_fingerprint(g: &Graph) -> u64 {
    let d = DistanceMatrix::new(g);
    let n = g.n();
    let mut profiles: Vec<Vec<u32>> = Vec::with_capacity(n);
    for u in 0..n as u32 {
        let mut freq = vec![0u32; n + 1];
        for &dist in d.row(u) {
            let idx = if dist == crate::traversal::UNREACHABLE {
                n
            } else {
                dist as usize
            };
            freq[idx] += 1;
        }
        profiles.push(freq);
    }
    profiles.sort();
    let mut hasher = DefaultHasher::new();
    n.hash(&mut hasher);
    g.m().hash(&mut hasher);
    profiles.hash(&mut hasher);
    hasher.finish()
}

/// Exact isomorphism test via backtracking with degree and distance-profile
/// pruning. Intended for the small graphs of the enumeration experiments
/// (`n ≲ 12`).
///
/// # Examples
///
/// ```
/// use bncg_graph::{generators, iso::are_isomorphic};
///
/// let c5 = generators::cycle(5);
/// let p5 = generators::path(5);
/// assert!(!are_isomorphic(&c5, &p5));
/// assert!(are_isomorphic(&c5, &c5.relabeled(&[2, 0, 3, 1, 4])));
/// ```
#[must_use]
pub fn are_isomorphic(a: &Graph, b: &Graph) -> bool {
    if a.n() != b.n() || a.m() != b.m() {
        return false;
    }
    let n = a.n();
    if n == 0 {
        return true;
    }
    let da = DistanceMatrix::new(a);
    let db = DistanceMatrix::new(b);
    let profile = |d: &DistanceMatrix, u: u32| -> Vec<u32> {
        let mut freq = vec![0u32; n + 1];
        for &dist in d.row(u) {
            let idx = if dist == crate::traversal::UNREACHABLE {
                n
            } else {
                dist as usize
            };
            freq[idx] += 1;
        }
        freq
    };
    let pa: Vec<Vec<u32>> = (0..n as u32).map(|u| profile(&da, u)).collect();
    let pb: Vec<Vec<u32>> = (0..n as u32).map(|u| profile(&db, u)).collect();
    {
        let mut sa = pa.clone();
        let mut sb = pb.clone();
        sa.sort();
        sb.sort();
        if sa != sb {
            return false;
        }
    }

    // Map nodes of `a` in order of rarest profile first to fail fast.
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rarity = std::collections::HashMap::new();
    for p in &pa {
        *rarity.entry(p.clone()).or_insert(0u32) += 1;
    }
    order.sort_by_key(|&u| (rarity[&pa[u as usize]], std::cmp::Reverse(a.degree(u))));

    let mut mapping = vec![u32::MAX; n];
    let mut used = vec![false; n];

    #[allow(clippy::too_many_arguments)]
    fn backtrack(
        a: &Graph,
        b: &Graph,
        pa: &[Vec<u32>],
        pb: &[Vec<u32>],
        order: &[u32],
        pos: usize,
        mapping: &mut [u32],
        used: &mut [bool],
    ) -> bool {
        if pos == order.len() {
            return true;
        }
        let u = order[pos];
        for cand in 0..b.n() as u32 {
            if used[cand as usize] || pa[u as usize] != pb[cand as usize] {
                continue;
            }
            // All previously mapped neighbors must map consistently.
            let consistent = order[..pos].iter().all(|&w| {
                let mw = mapping[w as usize];
                a.has_edge(u, w) == b.has_edge(cand, mw)
            });
            if !consistent {
                continue;
            }
            mapping[u as usize] = cand;
            used[cand as usize] = true;
            if backtrack(a, b, pa, pb, order, pos + 1, mapping, used) {
                return true;
            }
            mapping[u as usize] = u32::MAX;
            used[cand as usize] = false;
        }
        false
    }

    backtrack(a, b, &pa, &pb, &order, 0, &mut mapping, &mut used)
}

/// A canonical key for small graphs combining the cheap fingerprint with a
/// full representative check: graphs hash to the same bucket iff they share
/// the fingerprint, and a [`CanonicalSet`] resolves collisions exactly.
#[derive(Debug, Default)]
pub struct CanonicalSet {
    buckets: std::collections::HashMap<u64, Vec<Graph>>,
    len: usize,
}

impl CanonicalSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of isomorphism classes stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `g` if no isomorphic graph is present. Returns `true` if the
    /// graph was new.
    pub fn insert(&mut self, g: Graph) -> bool {
        let key = invariant_fingerprint(&g);
        let bucket = self.buckets.entry(key).or_default();
        if bucket.iter().any(|h| are_isomorphic(h, &g)) {
            return false;
        }
        bucket.push(g);
        self.len += 1;
        true
    }

    /// Whether an isomorphic copy of `g` is present.
    #[must_use]
    pub fn contains(&self, g: &Graph) -> bool {
        let key = invariant_fingerprint(g);
        self.buckets
            .get(&key)
            .is_some_and(|bucket| bucket.iter().any(|h| are_isomorphic(h, g)))
    }

    /// Iterates over one representative per stored isomorphism class.
    pub fn iter(&self) -> impl Iterator<Item = &Graph> {
        self.buckets.values().flatten()
    }

    /// Consumes the set, returning all representatives.
    #[must_use]
    pub fn into_graphs(self) -> Vec<Graph> {
        self.buckets.into_values().flatten().collect()
    }
}

/// Iteratively refined, isomorphism-invariant node colors: initial colors
/// are the sorted distance-frequency profiles (the [`invariant_fingerprint`]
/// ingredient), then 1-WL refinement — a node's new color is its old color
/// plus the sorted multiset of neighbor colors — runs to a fixpoint. Color
/// *ids* are assigned by sorting the underlying signatures, so two
/// isomorphic graphs end with the identical id-per-orbit assignment.
fn refined_colors(g: &Graph) -> Vec<u32> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let d = DistanceMatrix::new(g);
    let mut profiles: Vec<Vec<u32>> = Vec::with_capacity(n);
    for u in 0..n as u32 {
        let mut freq = vec![0u32; n + 1];
        for &dist in d.row(u) {
            let idx = if dist == crate::traversal::UNREACHABLE {
                n
            } else {
                dist as usize
            };
            freq[idx] += 1;
        }
        profiles.push(freq);
    }
    let assign = |keys: &[Vec<u32>]| -> Vec<u32> {
        let mut sorted: Vec<&Vec<u32>> = keys.iter().collect();
        sorted.sort();
        sorted.dedup();
        keys.iter()
            .map(|k| sorted.binary_search(&k).expect("key present") as u32)
            .collect()
    };
    let mut colors = assign(&profiles);
    loop {
        let signatures: Vec<Vec<u32>> = (0..n as u32)
            .map(|u| {
                let mut sig = vec![colors[u as usize]];
                let mut nb: Vec<u32> = g.neighbors(u).iter().map(|&v| colors[v as usize]).collect();
                nb.sort_unstable();
                sig.extend(nb);
                sig
            })
            .collect();
        let next = assign(&signatures);
        let classes = |c: &[u32]| c.iter().copied().max().map_or(0, |m| m + 1);
        if classes(&next) == classes(&colors) {
            return next;
        }
        colors = next;
    }
}

/// Whether unplaced vertices `u` and `v` are interchangeable by the
/// transposition `(u v)`: their neighborhoods agree once each other is
/// excluded (true twins share an edge, false twins do not — both make the
/// swap an automorphism, so branching on one of them suffices).
fn are_twins(g: &Graph, u: u32, v: u32) -> bool {
    let strip = |w: u32, other: u32| -> Vec<u32> {
        let mut nb: Vec<u32> = g
            .neighbors(w)
            .iter()
            .copied()
            .filter(|&x| x != other)
            .collect();
        nb.sort_unstable();
        nb
    };
    strip(u, v) == strip(v, u)
}

/// A canonical labeling of `g`: returns the canonical representative of
/// `g`'s isomorphism class together with the permutation that produces it
/// (`perm[u]` is the canonical label of node `u`, i.e.
/// `g.relabeled(&perm)` equals the returned graph).
///
/// The representative minimizes the graph6 bit order (the column-major
/// upper triangle) over all labelings consistent with the refined color
/// classes — an isomorphism-invariant restriction, so two isomorphic
/// graphs always map to the *same* representative, which is what makes
/// [`canonical_key`] usable as an exact atlas/dedup key. The search is a
/// class-blocked branch-and-bound: positions are filled class by class,
/// only minimum-column candidates are branched (ties only), and unplaced
/// twins are pruned (swapping them is an automorphism). Intended for the
/// enumeration sizes (`n ≲ 11`); highly symmetric graphs branch along
/// their automorphism orbits, which stays small at these sizes.
///
/// # Examples
///
/// ```
/// use bncg_graph::{generators, iso::canonical_form};
///
/// let g = generators::cycle(6);
/// let h = g.relabeled(&[3, 1, 5, 0, 4, 2]);
/// assert_eq!(canonical_form(&g).0, canonical_form(&h).0);
/// ```
#[must_use]
pub fn canonical_form(g: &Graph) -> (Graph, Vec<u32>) {
    let n = g.n();
    if n == 0 {
        return (Graph::new(0), Vec::new());
    }
    let colors = refined_colors(g);
    // Position k is filled from the k-th color class in color-id order
    // (sizes and ids are isomorphism-invariant, so this schedule is too).
    let mut schedule: Vec<u32> = Vec::with_capacity(n);
    let classes = colors.iter().copied().max().expect("n > 0") + 1;
    for c in 0..classes {
        for _ in colors.iter().filter(|&&x| x == c) {
            schedule.push(c);
        }
    }

    struct Search<'a> {
        g: &'a Graph,
        colors: &'a [u32],
        schedule: &'a [u32],
        placed: Vec<u32>,
        cols: Vec<u32>,
        best: Option<(Vec<u32>, Vec<u32>)>, // (columns, placement)
    }

    impl Search<'_> {
        /// The column-`k` bits of placing `w` next: adjacency to the
        /// placed prefix, row 0 most significant (graph6 bit order).
        fn column(&self, w: u32) -> u32 {
            let k = self.placed.len();
            let mut col = 0u32;
            for (i, &p) in self.placed.iter().enumerate() {
                if self.g.has_edge(p, w) {
                    col |= 1 << (k - 1 - i);
                }
            }
            col
        }

        fn run(&mut self) {
            let k = self.placed.len();
            if k == self.schedule.len() {
                let better = match &self.best {
                    None => true,
                    Some((cols, _)) => self.cols < *cols,
                };
                if better {
                    self.best = Some((self.cols.clone(), self.placed.clone()));
                }
                return;
            }
            let class = self.schedule[k];
            let mut ties: Vec<u32> = Vec::new();
            let mut min_col = u32::MAX;
            for w in 0..self.g.n() as u32 {
                if self.colors[w as usize] != class || self.placed.contains(&w) {
                    continue;
                }
                let col = self.column(w);
                match col.cmp(&min_col) {
                    std::cmp::Ordering::Less => {
                        min_col = col;
                        ties.clear();
                        ties.push(w);
                    }
                    std::cmp::Ordering::Equal => ties.push(w),
                    std::cmp::Ordering::Greater => {}
                }
            }
            // Prefix-equal against the incumbent: a worse column can never
            // recover, an equal one must keep searching.
            if let Some((best_cols, _)) = &self.best {
                if self.cols[..k] == best_cols[..k] && min_col > best_cols[k] {
                    return;
                }
            }
            let mut branched: Vec<u32> = Vec::new();
            for w in ties {
                if branched.iter().any(|&u| are_twins(self.g, u, w)) {
                    continue;
                }
                branched.push(w);
                self.placed.push(w);
                self.cols.push(min_col);
                self.run();
                self.cols.pop();
                self.placed.pop();
            }
        }
    }

    let mut search = Search {
        g,
        colors: &colors,
        schedule: &schedule,
        placed: Vec::with_capacity(n),
        cols: Vec::with_capacity(n),
        best: None,
    };
    search.run();
    let (_, placement) = search.best.expect("every class schedule completes");
    let mut perm = vec![0u32; n];
    for (pos, &w) in placement.iter().enumerate() {
        perm[w as usize] = pos as u32;
    }
    (g.relabeled(&perm), perm)
}

/// The canonical graph6 key of `g`'s isomorphism class: two graphs share
/// the key iff they are isomorphic. This is the atlas key format.
///
/// # Panics
///
/// Panics if `n` exceeds the graph6 encoder's limit (far above the
/// enumeration sizes this is meant for).
#[must_use]
pub fn canonical_key(g: &Graph) -> String {
    crate::graph6::encode(&canonical_form(g).0).expect("enumeration-sized graph encodes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ahu_distinguishes_rooted_positions() {
        let g = generators::path(4);
        // Rooted at an end vs at an inner node: different rooted trees.
        assert_ne!(ahu_encoding(&g, 0), ahu_encoding(&g, 1));
        // The two ends are symmetric.
        assert_eq!(ahu_encoding(&g, 0), ahu_encoding(&g, 3));
    }

    #[test]
    fn centroids_match_medians() {
        let mut rng = crate::test_rng(17);
        for _ in 0..30 {
            let g = generators::random_tree(20, &mut rng);
            let mut centroids = tree_centroids(&g);
            let mut medians = crate::tree::tree_medians(&g).unwrap();
            centroids.sort_unstable();
            medians.sort_unstable();
            assert_eq!(centroids, medians);
        }
    }

    #[test]
    fn canonical_tree_encoding_is_isomorphism_invariant() {
        let mut rng = crate::test_rng(23);
        for _ in 0..25 {
            let g = generators::random_tree(12, &mut rng);
            let perm = generators::random_permutation(12, &mut rng);
            let h = g.relabeled(&perm);
            assert_eq!(canonical_tree_encoding(&g), canonical_tree_encoding(&h));
        }
    }

    #[test]
    fn canonical_tree_encoding_separates_non_isomorphic() {
        let star = generators::star(6);
        let path = generators::path(6);
        let spider = generators::spider(2, 2); // n = 5, skip
        assert_ne!(
            canonical_tree_encoding(&star),
            canonical_tree_encoding(&path)
        );
        assert_eq!(spider.n(), 5);
    }

    #[test]
    fn isomorphism_respects_relabeling() {
        let mut rng = crate::test_rng(31);
        for _ in 0..15 {
            let g = generators::random_connected(9, 0.3, &mut rng);
            let perm = generators::random_permutation(9, &mut rng);
            assert!(are_isomorphic(&g, &g.relabeled(&perm)));
        }
    }

    #[test]
    fn isomorphism_rejects_different_graphs() {
        assert!(!are_isomorphic(&generators::cycle(6), &generators::path(6)));
        assert!(!are_isomorphic(&generators::star(5), &generators::path(5)));
        // Same degree sequence, different graphs: C6 vs two triangles.
        let c6 = generators::cycle(6);
        let two_triangles =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        assert!(!are_isomorphic(&c6, &two_triangles));
    }

    #[test]
    fn fingerprint_is_invariant() {
        let mut rng = crate::test_rng(41);
        for _ in 0..15 {
            let g = generators::random_connected(10, 0.25, &mut rng);
            let perm = generators::random_permutation(10, &mut rng);
            assert_eq!(
                invariant_fingerprint(&g),
                invariant_fingerprint(&g.relabeled(&perm))
            );
        }
    }

    #[test]
    fn canonical_set_deduplicates() {
        let mut set = CanonicalSet::new();
        let g = generators::cycle(5);
        assert!(set.insert(g.clone()));
        assert!(!set.insert(g.relabeled(&[3, 1, 4, 0, 2])));
        assert!(set.insert(generators::path(5)));
        assert_eq!(set.len(), 2);
        assert!(set.contains(&generators::cycle(5)));
        assert!(!set.contains(&generators::star(5)));
        assert_eq!(set.into_graphs().len(), 2);
    }

    #[test]
    fn empty_graphs_are_isomorphic() {
        assert!(are_isomorphic(&Graph::new(0), &Graph::new(0)));
        assert!(are_isomorphic(&Graph::new(3), &Graph::new(3)));
        assert!(!are_isomorphic(&Graph::new(3), &Graph::new(4)));
    }

    #[test]
    fn canonical_form_is_isomorphism_invariant() {
        let mut rng = crate::test_rng(53);
        for n in [1usize, 2, 5, 8, 9] {
            for _ in 0..12 {
                let g = generators::random_connected(n, 0.35, &mut rng);
                let perm = generators::random_permutation(n, &mut rng);
                let h = g.relabeled(&perm);
                let (cg, _) = canonical_form(&g);
                let (ch, _) = canonical_form(&h);
                assert_eq!(
                    cg.edges().collect::<Vec<_>>(),
                    ch.edges().collect::<Vec<_>>(),
                    "relabeled copies must share the canonical representative (n = {n})"
                );
                assert_eq!(canonical_key(&g), canonical_key(&h));
            }
        }
    }

    #[test]
    fn canonical_form_permutation_produces_the_representative() {
        let mut rng = crate::test_rng(59);
        for _ in 0..20 {
            let g = generators::random_connected(8, 0.3, &mut rng);
            let (cg, perm) = canonical_form(&g);
            assert_eq!(g.relabeled(&perm), cg);
            assert!(are_isomorphic(&g, &cg));
        }
    }

    #[test]
    fn canonical_form_handles_symmetric_and_disconnected_graphs() {
        // Highly symmetric: the complete graph (all vertices twins) and
        // the Petersen graph (vertex-transitive, no twins — the branch
        // search must follow its automorphism orbits).
        let k7 = generators::clique(7);
        assert_eq!(canonical_form(&k7).0, k7);
        let petersen = Graph::from_edges(
            10,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0),
                (0, 5),
                (1, 6),
                (2, 7),
                (3, 8),
                (4, 9),
                (5, 7),
                (7, 9),
                (9, 6),
                (6, 8),
                (8, 5),
            ],
        )
        .unwrap();
        let scrambled = petersen.relabeled(&[7, 2, 9, 0, 4, 1, 8, 3, 6, 5]);
        assert_eq!(canonical_key(&petersen), canonical_key(&scrambled));
        // Disconnected graphs canonicalize too (the vertex-extension
        // enumeration walks through them).
        let two_triangles =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let swapped = two_triangles.relabeled(&[3, 4, 5, 0, 1, 2]);
        assert_eq!(canonical_key(&two_triangles), canonical_key(&swapped));
        assert_ne!(
            canonical_key(&two_triangles),
            canonical_key(&generators::cycle(6))
        );
    }

    #[test]
    fn canonical_keys_separate_all_small_classes() {
        // Every pair of non-isomorphic connected graphs on 6 nodes gets a
        // distinct key: 112 classes, 112 keys.
        let classes = crate::enumerate::connected_graphs(6).unwrap();
        let keys: std::collections::HashSet<String> = classes.iter().map(canonical_key).collect();
        assert_eq!(keys.len(), classes.len());
        assert_eq!(keys.len(), 112);
    }
}
