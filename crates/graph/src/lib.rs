//! # bncg-graph
//!
//! Graph substrate for the reproduction of *The Impact of Cooperation in
//! Bilateral Network Creation* (Friedrich, Gawendowicz, Lenzner, Zahn;
//! PODC 2023).
//!
//! The game layer (`bncg-core`) models agents as nodes of a simple
//! undirected graph and needs, beyond basic adjacency:
//!
//! * hop distances and distance sums ([`bfs_distances`], [`DistanceMatrix`]),
//!   with word-parallel `u64`-bitset kernels for `n ≤ 64` ([`BitsetGraph`])
//!   behind the same scalar-reference contract,
//! * the rooted-tree machinery of the paper's Section 3.2 — layers,
//!   subtree sizes, depths, and 1-medians ([`RootedTree`]),
//! * the named topologies of the paper ([`generators`]): star and clique
//!   (social optima), cycles (Lemma 2.4), `d`-ary trees (Lemma 3.18), …
//! * exhaustive enumeration of small trees and connected graphs up to
//!   isomorphism ([`enumerate`]), backed by canonical forms and an exact
//!   isomorphism test ([`iso`]),
//! * the `graph6` interchange format for logging witnesses ([`graph6`]).
//!
//! # Examples
//!
//! ```
//! use bncg_graph::{generators, DistanceMatrix, root_at_median};
//!
//! let tree = generators::spider(3, 2);
//! let rooted = root_at_median(&tree)?;
//! assert_eq!(rooted.root(), 0);
//! let d = DistanceMatrix::new(&tree);
//! assert_eq!(d.diameter(), Some(4));
//! # Ok::<(), bncg_graph::GraphError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod bitset;
mod error;
#[allow(clippy::module_inception)]
mod graph;
mod traversal;
mod tree;

pub mod connectivity;
pub mod enumerate;
pub mod generators;
pub mod graph6;
pub mod iso;

pub use bitset::{BitsetGraph, BITSET_MAX_N};
pub use error::GraphError;
pub use graph::{fnv1a_u64, pair_index, Graph};
pub use traversal::{bfs_distances, diameter, dist_sum_from, DistanceMatrix, UNREACHABLE};
pub use tree::{root_at_median, tree_medians, RootedTree};

/// A seeded small RNG for deterministic tests and examples.
///
/// This is a convenience for the reproduction's own test suites; it is part
/// of the public API so downstream crates in the workspace can share the
/// same deterministic setup.
#[must_use]
pub fn test_rng(seed: u64) -> rand::rngs::SmallRng {
    use rand::SeedableRng;
    rand::rngs::SmallRng::seed_from_u64(seed)
}
