//! Breadth-first search, distances, and the all-pairs distance matrix.
//!
//! Distances are hop counts; `UNREACHABLE` marks disconnected pairs. The
//! game layer translates `UNREACHABLE` into the paper's `M` constant
//! (lexicographically dominant disconnection penalty).

use crate::bitset::BitsetGraph;
use crate::graph::Graph;

/// Sentinel distance for unreachable pairs.
pub const UNREACHABLE: u32 = u32::MAX;

/// Writes BFS hop distances from `src` into `out` (resized to `n`), using
/// [`UNREACHABLE`] for nodes in other components. Returns the number of
/// reachable nodes, including `src` itself.
///
/// # Panics
///
/// Panics if `src` is out of range.
///
/// # Examples
///
/// ```
/// use bncg_graph::{bfs_distances, Graph, UNREACHABLE};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2)])?;
/// let mut dist = Vec::new();
/// let reached = bfs_distances(&g, 0, &mut dist);
/// assert_eq!(reached, 3);
/// assert_eq!(dist, vec![0, 1, 2, UNREACHABLE]);
/// # Ok::<(), bncg_graph::GraphError>(())
/// ```
pub fn bfs_distances(g: &Graph, src: u32, out: &mut Vec<u32>) -> usize {
    let n = g.n();
    assert!((src as usize) < n, "source node out of range");
    out.clear();
    out.resize(n, UNREACHABLE);
    out[src as usize] = 0;
    let mut queue = std::collections::VecDeque::with_capacity(n);
    queue.push_back(src);
    let mut reached = 1usize;
    while let Some(u) = queue.pop_front() {
        let du = out[u as usize];
        for &v in g.neighbors(u) {
            if out[v as usize] == UNREACHABLE {
                out[v as usize] = du + 1;
                reached += 1;
                queue.push_back(v);
            }
        }
    }
    reached
}

/// Sum of hop distances from `u` to all nodes, or `None` if some node is
/// unreachable from `u`.
///
/// # Examples
///
/// ```
/// use bncg_graph::{dist_sum_from, Graph};
///
/// let path = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// assert_eq!(dist_sum_from(&path, 0), Some(3));
/// assert_eq!(dist_sum_from(&path, 1), Some(2));
/// # Ok::<(), bncg_graph::GraphError>(())
/// ```
#[must_use]
pub fn dist_sum_from(g: &Graph, u: u32) -> Option<u64> {
    let mut dist = Vec::new();
    let reached = bfs_distances(g, u, &mut dist);
    if reached != g.n() {
        return None;
    }
    Some(dist.iter().map(|&d| u64::from(d)).sum())
}

/// The all-pairs hop-distance matrix of a graph, stored densely.
///
/// Rows are BFS distance vectors; disconnected pairs hold [`UNREACHABLE`].
///
/// # Examples
///
/// ```
/// use bncg_graph::{DistanceMatrix, Graph};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let d = DistanceMatrix::new(&g);
/// assert_eq!(d.dist(0, 3), 3);
/// assert_eq!(d.row_sum(1), Some(4));
/// assert_eq!(d.diameter(), Some(3));
/// # Ok::<(), bncg_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<u32>,
}

impl DistanceMatrix {
    /// Computes the distance matrix with one BFS per node. For `n ≤ 64`
    /// the rows come from the word-parallel [`BitsetGraph`] frontier BFS
    /// (`O(n · diam · n)` word ops for the whole matrix); larger graphs
    /// fall back to the scalar `O(n·(n + m))` adjacency-list BFS.
    #[must_use]
    pub fn new(g: &Graph) -> Self {
        let n = g.n();
        let mut d = vec![UNREACHABLE; n * n];
        if let Some(bits) = BitsetGraph::from_graph(g) {
            for u in 0..n {
                bits.write_distances(u as u32, &mut d[u * n..(u + 1) * n]);
            }
        } else {
            let mut row = Vec::new();
            for u in 0..n as u32 {
                bfs_distances(g, u, &mut row);
                d[u as usize * n..(u as usize + 1) * n].copy_from_slice(&row);
            }
        }
        DistanceMatrix { n, d }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance between `u` and `v` ([`UNREACHABLE`] if disconnected).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    #[must_use]
    pub fn dist(&self, u: u32, v: u32) -> u32 {
        self.d[u as usize * self.n + v as usize]
    }

    /// The full distance row of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn row(&self, u: u32) -> &[u32] {
        &self.d[u as usize * self.n..(u as usize + 1) * self.n]
    }

    /// Sum of distances from `u` to everyone, or `None` if `u` cannot reach
    /// some node.
    #[must_use]
    pub fn row_sum(&self, u: u32) -> Option<u64> {
        let mut sum = 0u64;
        for &d in self.row(u) {
            if d == UNREACHABLE {
                return None;
            }
            sum += u64::from(d);
        }
        Some(sum)
    }

    /// Eccentricity of `u` (max distance), or `None` if `u` cannot reach
    /// some node.
    #[must_use]
    pub fn eccentricity(&self, u: u32) -> Option<u32> {
        let mut ecc = 0u32;
        for &d in self.row(u) {
            if d == UNREACHABLE {
                return None;
            }
            ecc = ecc.max(d);
        }
        Some(ecc)
    }

    /// Diameter of the graph, or `None` if disconnected. The single-node
    /// graph has diameter 0.
    #[must_use]
    pub fn diameter(&self) -> Option<u32> {
        let mut diam = 0u32;
        for u in 0..self.n as u32 {
            diam = diam.max(self.eccentricity(u)?);
        }
        Some(diam)
    }

    /// Total distance `Σ_u Σ_v dist(u, v)` over ordered pairs, or `None`
    /// if the graph is disconnected.
    #[must_use]
    pub fn total_distance(&self) -> Option<u64> {
        let mut sum = 0u64;
        for u in 0..self.n as u32 {
            sum += self.row_sum(u)?;
        }
        Some(sum)
    }
}

impl DistanceMatrix {
    /// Sources whose distance row can change when the edge `{u, v}` is
    /// **removed**: exactly those `s` with `|d(s,u) − d(s,v)| == 1`, since
    /// along any shortest path consecutive distances-from-`s` differ by
    /// exactly one, so no other source routes a shortest path through the
    /// edge. Sources that reach neither endpoint are unaffected too (if `s`
    /// reaches one endpoint of an existing edge it reaches both).
    #[must_use]
    pub fn removal_affected_sources(&self, u: u32, v: u32) -> Vec<u32> {
        let row_u = self.row(u);
        let row_v = self.row(v);
        (0..self.n as u32)
            .filter(|&s| {
                let (du, dv) = (row_u[s as usize], row_v[s as usize]);
                du != UNREACHABLE && dv != UNREACHABLE && du.abs_diff(dv) == 1
            })
            .collect()
    }

    /// Sources whose distance row can change when the edge `{u, v}` is
    /// **added**: exactly those `s` with `|d(s,u) − d(s,v)| ≥ 2` (including
    /// the case where `s` reaches one endpoint but not the other). If the
    /// endpoint distances differ by at most one, the new edge shortens no
    /// path from `s` by the triangle inequality.
    #[must_use]
    pub fn addition_affected_sources(&self, u: u32, v: u32) -> Vec<u32> {
        let row_u = self.row(u);
        let row_v = self.row(v);
        (0..self.n as u32)
            .filter(|&s| {
                let (du, dv) = (row_u[s as usize], row_v[s as usize]);
                match (du == UNREACHABLE, dv == UNREACHABLE) {
                    (true, true) => false,
                    (true, false) | (false, true) => true,
                    (false, false) => du.abs_diff(dv) >= 2,
                }
            })
            .collect()
    }

    /// Incrementally updates the matrix after the single edge `{u, v}` was
    /// toggled; `g` must be the **post-toggle** graph. Returns the sources
    /// whose rows were recomputed (a superset of those that changed is never
    /// returned — only genuinely affected sources are re-expanded).
    ///
    /// * **Addition** — affected rows are rewritten in `O(n)` each via the
    ///   exact shortcut formula `d'(s,w) = min(d(s,w), d(s,u)+1+d(v,w),
    ///   d(s,v)+1+d(u,w))` (a shortest path uses a new positive-weight edge
    ///   at most once).
    /// * **Removal** — a delta-BFS: only sources with
    ///   `|d(s,u) − d(s,v)| == 1` can route shortest paths through the
    ///   edge; exactly those are re-expanded with a fresh BFS.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range, or if `g`'s node count differs
    /// from the matrix dimension.
    ///
    /// # Examples
    ///
    /// ```
    /// use bncg_graph::{DistanceMatrix, Graph};
    ///
    /// let mut g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let mut d = DistanceMatrix::new(&g);
    /// g.add_edge(0, 3)?;
    /// let affected = d.apply_edge_toggle(&g, 0, 3);
    /// assert_eq!(d, DistanceMatrix::new(&g));
    /// assert!(affected.contains(&0) && affected.contains(&3));
    /// g.remove_edge(1, 2)?;
    /// d.apply_edge_toggle(&g, 1, 2);
    /// assert_eq!(d, DistanceMatrix::new(&g));
    /// # Ok::<(), bncg_graph::GraphError>(())
    /// ```
    pub fn apply_edge_toggle(&mut self, g: &Graph, u: u32, v: u32) -> Vec<u32> {
        assert_eq!(g.n(), self.n, "graph/matrix dimension mismatch");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "endpoint out of range"
        );
        if g.has_edge(u, v) {
            self.apply_edge_addition(u, v)
        } else {
            self.apply_edge_removal(g, u, v)
        }
    }

    fn apply_edge_addition(&mut self, u: u32, v: u32) -> Vec<u32> {
        let affected = self.addition_affected_sources(u, v);
        if affected.is_empty() {
            return affected;
        }
        // The shortcut formula only reads pre-toggle distances to/from the
        // endpoints, so snapshot those two rows before rewriting anything.
        let row_u = self.row(u).to_vec();
        let row_v = self.row(v).to_vec();
        let via = |a: u32, b: u32| -> u32 {
            if a == UNREACHABLE || b == UNREACHABLE {
                UNREACHABLE
            } else {
                a + 1 + b
            }
        };
        for &s in &affected {
            let du = row_u[s as usize];
            let dv = row_v[s as usize];
            let base = s as usize * self.n;
            for w in 0..self.n {
                let old = self.d[base + w];
                let new = old.min(via(du, row_v[w])).min(via(dv, row_u[w]));
                self.d[base + w] = new;
            }
        }
        affected
    }

    fn apply_edge_removal(&mut self, g: &Graph, u: u32, v: u32) -> Vec<u32> {
        let affected = self.removal_affected_sources(u, v);
        if affected.is_empty() {
            return affected;
        }
        // The re-BFS of the affected sources is the delta-update hot
        // spot; one bitset conversion amortizes over all of them.
        if let Some(bits) = BitsetGraph::from_graph(g) {
            for &s in &affected {
                bits.write_distances(
                    s,
                    &mut self.d[s as usize * self.n..(s as usize + 1) * self.n],
                );
            }
        } else {
            let mut row = Vec::new();
            for &s in &affected {
                bfs_distances(g, s, &mut row);
                self.d[s as usize * self.n..(s as usize + 1) * self.n].copy_from_slice(&row);
            }
        }
        affected
    }
}

/// Computes the diameter directly from a graph (`None` if disconnected).
///
/// # Examples
///
/// ```
/// use bncg_graph::{diameter, generators};
///
/// assert_eq!(diameter(&generators::cycle(6)), Some(3));
/// assert_eq!(diameter(&generators::star(9)), Some(2));
/// ```
#[must_use]
pub fn diameter(g: &Graph) -> Option<u32> {
    let mut row = Vec::new();
    let mut diam = 0u32;
    for u in 0..g.n() as u32 {
        if bfs_distances(g, u, &mut row) != g.n() {
            return None;
        }
        diam = diam.max(row.iter().copied().max().unwrap_or(0));
    }
    Some(diam)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_disconnected_graph_reports_reachable_count() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
        let mut dist = Vec::new();
        assert_eq!(bfs_distances(&g, 2, &mut dist), 2);
        assert_eq!(dist[3], 1);
        assert_eq!(dist[0], UNREACHABLE);
        assert_eq!(dist[4], UNREACHABLE);
    }

    #[test]
    fn dist_sum_matches_matrix() {
        let g = generators::path(6);
        let d = DistanceMatrix::new(&g);
        for u in 0..6 {
            assert_eq!(dist_sum_from(&g, u), d.row_sum(u));
        }
    }

    #[test]
    fn dist_sum_is_none_when_disconnected() {
        let g = Graph::new(3);
        assert_eq!(dist_sum_from(&g, 0), None);
        let d = DistanceMatrix::new(&g);
        assert_eq!(d.row_sum(0), None);
        assert_eq!(d.diameter(), None);
        assert_eq!(d.total_distance(), None);
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let g = generators::cycle(7);
        let d = DistanceMatrix::new(&g);
        for u in 0..7u32 {
            assert_eq!(d.dist(u, u), 0);
            for v in 0..7u32 {
                assert_eq!(d.dist(u, v), d.dist(v, u));
            }
        }
    }

    #[test]
    fn path_distances_are_index_differences() {
        let g = generators::path(5);
        let d = DistanceMatrix::new(&g);
        for u in 0..5u32 {
            for v in 0..5u32 {
                assert_eq!(d.dist(u, v), u.abs_diff(v));
            }
        }
        assert_eq!(d.diameter(), Some(4));
    }

    #[test]
    fn star_total_distance_matches_closed_form() {
        // Star on n nodes: total over ordered pairs is
        // 2(n−1) (center↔leaves) + 2(n−1)(n−2) (leaf↔leaf).
        for n in 2..10u64 {
            let g = generators::star(n as usize);
            let d = DistanceMatrix::new(&g);
            assert_eq!(
                d.total_distance(),
                Some(2 * (n - 1) + 2 * (n - 1) * (n - 2))
            );
        }
    }

    #[test]
    fn edge_toggle_matches_rebuild_on_random_graphs() {
        let mut rng = crate::test_rng(4242);
        for _ in 0..30 {
            let mut g = generators::gnp(14, 0.25, &mut rng);
            let mut d = DistanceMatrix::new(&g);
            for step in 0..20 {
                // Alternate random toggles over all pairs.
                let u = step % 14;
                let v = (step * 5 + 3) % 14;
                if u == v {
                    continue;
                }
                g.toggle_edge(u as u32, v as u32).unwrap();
                d.apply_edge_toggle(&g, u as u32, v as u32);
                assert_eq!(
                    d,
                    DistanceMatrix::new(&g),
                    "drift after toggling {{{u}, {v}}}"
                );
            }
        }
    }

    #[test]
    fn affected_sources_are_sound_and_tight_on_removal() {
        // Soundness: every row that actually changes is listed. The listed
        // set may include rows that end up unchanged (multiple shortest
        // paths), which the update handles by re-BFS.
        let mut rng = crate::test_rng(7);
        for _ in 0..20 {
            let g = generators::random_connected(12, 0.3, &mut rng);
            let d = DistanceMatrix::new(&g);
            for (u, v) in g.edges() {
                let mut g2 = g.clone();
                g2.remove_edge(u, v).unwrap();
                let d2 = DistanceMatrix::new(&g2);
                let affected: std::collections::HashSet<u32> =
                    d.removal_affected_sources(u, v).into_iter().collect();
                for s in 0..12u32 {
                    if d.row(s) != d2.row(s) {
                        assert!(affected.contains(&s), "changed row {s} not predicted");
                    }
                }
            }
        }
    }

    #[test]
    fn affected_sources_are_sound_on_addition() {
        let mut rng = crate::test_rng(8);
        for _ in 0..20 {
            let g = generators::gnp(12, 0.2, &mut rng);
            let d = DistanceMatrix::new(&g);
            for (u, v) in g.non_edges() {
                let mut g2 = g.clone();
                g2.add_edge(u, v).unwrap();
                let d2 = DistanceMatrix::new(&g2);
                let affected: std::collections::HashSet<u32> =
                    d.addition_affected_sources(u, v).into_iter().collect();
                for s in 0..12u32 {
                    if d.row(s) != d2.row(s) {
                        assert!(affected.contains(&s), "changed row {s} not predicted");
                    }
                }
            }
        }
    }

    #[test]
    fn toggle_handles_component_merges_and_splits() {
        // Merging two components and splitting them again.
        let mut g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let mut d = DistanceMatrix::new(&g);
        g.add_edge(2, 3).unwrap();
        d.apply_edge_toggle(&g, 2, 3);
        assert_eq!(d, DistanceMatrix::new(&g));
        assert_eq!(d.dist(0, 5), 5);
        g.remove_edge(2, 3).unwrap();
        d.apply_edge_toggle(&g, 2, 3);
        assert_eq!(d, DistanceMatrix::new(&g));
        assert_eq!(d.dist(0, 5), UNREACHABLE);
    }

    #[test]
    fn single_node_graph_has_zero_diameter() {
        let g = Graph::new(1);
        let d = DistanceMatrix::new(&g);
        assert_eq!(d.diameter(), Some(0));
        assert_eq!(d.total_distance(), Some(0));
        assert_eq!(diameter(&g), Some(0));
    }
}
