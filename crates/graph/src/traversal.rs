//! Breadth-first search, distances, and the all-pairs distance matrix.
//!
//! Distances are hop counts; `UNREACHABLE` marks disconnected pairs. The
//! game layer translates `UNREACHABLE` into the paper's `M` constant
//! (lexicographically dominant disconnection penalty).

use crate::graph::Graph;

/// Sentinel distance for unreachable pairs.
pub const UNREACHABLE: u32 = u32::MAX;

/// Writes BFS hop distances from `src` into `out` (resized to `n`), using
/// [`UNREACHABLE`] for nodes in other components. Returns the number of
/// reachable nodes, including `src` itself.
///
/// # Panics
///
/// Panics if `src` is out of range.
///
/// # Examples
///
/// ```
/// use bncg_graph::{bfs_distances, Graph, UNREACHABLE};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2)])?;
/// let mut dist = Vec::new();
/// let reached = bfs_distances(&g, 0, &mut dist);
/// assert_eq!(reached, 3);
/// assert_eq!(dist, vec![0, 1, 2, UNREACHABLE]);
/// # Ok::<(), bncg_graph::GraphError>(())
/// ```
pub fn bfs_distances(g: &Graph, src: u32, out: &mut Vec<u32>) -> usize {
    let n = g.n();
    assert!((src as usize) < n, "source node out of range");
    out.clear();
    out.resize(n, UNREACHABLE);
    out[src as usize] = 0;
    let mut queue = std::collections::VecDeque::with_capacity(n);
    queue.push_back(src);
    let mut reached = 1usize;
    while let Some(u) = queue.pop_front() {
        let du = out[u as usize];
        for &v in g.neighbors(u) {
            if out[v as usize] == UNREACHABLE {
                out[v as usize] = du + 1;
                reached += 1;
                queue.push_back(v);
            }
        }
    }
    reached
}

/// Sum of hop distances from `u` to all nodes, or `None` if some node is
/// unreachable from `u`.
///
/// # Examples
///
/// ```
/// use bncg_graph::{dist_sum_from, Graph};
///
/// let path = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// assert_eq!(dist_sum_from(&path, 0), Some(3));
/// assert_eq!(dist_sum_from(&path, 1), Some(2));
/// # Ok::<(), bncg_graph::GraphError>(())
/// ```
#[must_use]
pub fn dist_sum_from(g: &Graph, u: u32) -> Option<u64> {
    let mut dist = Vec::new();
    let reached = bfs_distances(g, u, &mut dist);
    if reached != g.n() {
        return None;
    }
    Some(dist.iter().map(|&d| u64::from(d)).sum())
}

/// The all-pairs hop-distance matrix of a graph, stored densely.
///
/// Rows are BFS distance vectors; disconnected pairs hold [`UNREACHABLE`].
///
/// # Examples
///
/// ```
/// use bncg_graph::{DistanceMatrix, Graph};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let d = DistanceMatrix::new(&g);
/// assert_eq!(d.dist(0, 3), 3);
/// assert_eq!(d.row_sum(1), Some(4));
/// assert_eq!(d.diameter(), Some(3));
/// # Ok::<(), bncg_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<u32>,
}

impl DistanceMatrix {
    /// Computes the distance matrix with one BFS per node: `O(n·(n + m))`.
    #[must_use]
    pub fn new(g: &Graph) -> Self {
        let n = g.n();
        let mut d = vec![UNREACHABLE; n * n];
        let mut row = Vec::new();
        for u in 0..n as u32 {
            bfs_distances(g, u, &mut row);
            d[u as usize * n..(u as usize + 1) * n].copy_from_slice(&row);
        }
        DistanceMatrix { n, d }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance between `u` and `v` ([`UNREACHABLE`] if disconnected).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    #[must_use]
    pub fn dist(&self, u: u32, v: u32) -> u32 {
        self.d[u as usize * self.n + v as usize]
    }

    /// The full distance row of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn row(&self, u: u32) -> &[u32] {
        &self.d[u as usize * self.n..(u as usize + 1) * self.n]
    }

    /// Sum of distances from `u` to everyone, or `None` if `u` cannot reach
    /// some node.
    #[must_use]
    pub fn row_sum(&self, u: u32) -> Option<u64> {
        let mut sum = 0u64;
        for &d in self.row(u) {
            if d == UNREACHABLE {
                return None;
            }
            sum += u64::from(d);
        }
        Some(sum)
    }

    /// Eccentricity of `u` (max distance), or `None` if `u` cannot reach
    /// some node.
    #[must_use]
    pub fn eccentricity(&self, u: u32) -> Option<u32> {
        let mut ecc = 0u32;
        for &d in self.row(u) {
            if d == UNREACHABLE {
                return None;
            }
            ecc = ecc.max(d);
        }
        Some(ecc)
    }

    /// Diameter of the graph, or `None` if disconnected. The single-node
    /// graph has diameter 0.
    #[must_use]
    pub fn diameter(&self) -> Option<u32> {
        let mut diam = 0u32;
        for u in 0..self.n as u32 {
            diam = diam.max(self.eccentricity(u)?);
        }
        Some(diam)
    }

    /// Total distance `Σ_u Σ_v dist(u, v)` over ordered pairs, or `None`
    /// if the graph is disconnected.
    #[must_use]
    pub fn total_distance(&self) -> Option<u64> {
        let mut sum = 0u64;
        for u in 0..self.n as u32 {
            sum += self.row_sum(u)?;
        }
        Some(sum)
    }
}

/// Computes the diameter directly from a graph (`None` if disconnected).
///
/// # Examples
///
/// ```
/// use bncg_graph::{diameter, generators};
///
/// assert_eq!(diameter(&generators::cycle(6)), Some(3));
/// assert_eq!(diameter(&generators::star(9)), Some(2));
/// ```
#[must_use]
pub fn diameter(g: &Graph) -> Option<u32> {
    let mut row = Vec::new();
    let mut diam = 0u32;
    for u in 0..g.n() as u32 {
        if bfs_distances(g, u, &mut row) != g.n() {
            return None;
        }
        diam = diam.max(row.iter().copied().max().unwrap_or(0));
    }
    Some(diam)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_disconnected_graph_reports_reachable_count() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
        let mut dist = Vec::new();
        assert_eq!(bfs_distances(&g, 2, &mut dist), 2);
        assert_eq!(dist[3], 1);
        assert_eq!(dist[0], UNREACHABLE);
        assert_eq!(dist[4], UNREACHABLE);
    }

    #[test]
    fn dist_sum_matches_matrix() {
        let g = generators::path(6);
        let d = DistanceMatrix::new(&g);
        for u in 0..6 {
            assert_eq!(dist_sum_from(&g, u), d.row_sum(u));
        }
    }

    #[test]
    fn dist_sum_is_none_when_disconnected() {
        let g = Graph::new(3);
        assert_eq!(dist_sum_from(&g, 0), None);
        let d = DistanceMatrix::new(&g);
        assert_eq!(d.row_sum(0), None);
        assert_eq!(d.diameter(), None);
        assert_eq!(d.total_distance(), None);
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let g = generators::cycle(7);
        let d = DistanceMatrix::new(&g);
        for u in 0..7u32 {
            assert_eq!(d.dist(u, u), 0);
            for v in 0..7u32 {
                assert_eq!(d.dist(u, v), d.dist(v, u));
            }
        }
    }

    #[test]
    fn path_distances_are_index_differences() {
        let g = generators::path(5);
        let d = DistanceMatrix::new(&g);
        for u in 0..5u32 {
            for v in 0..5u32 {
                assert_eq!(d.dist(u, v), u.abs_diff(v));
            }
        }
        assert_eq!(d.diameter(), Some(4));
    }

    #[test]
    fn star_total_distance_matches_closed_form() {
        // Star on n nodes: total over ordered pairs is
        // 2(n−1) (center↔leaves) + 2(n−1)(n−2) (leaf↔leaf).
        for n in 2..10u64 {
            let g = generators::star(n as usize);
            let d = DistanceMatrix::new(&g);
            assert_eq!(d.total_distance(), Some(2 * (n - 1) + 2 * (n - 1) * (n - 2)));
        }
    }

    #[test]
    fn single_node_graph_has_zero_diameter() {
        let g = Graph::new(1);
        let d = DistanceMatrix::new(&g);
        assert_eq!(d.diameter(), Some(0));
        assert_eq!(d.total_distance(), Some(0));
        assert_eq!(diameter(&g), Some(0));
    }
}
