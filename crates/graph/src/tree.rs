//! Rooted-tree machinery: layers, subtree sizes, medians, and rerooted
//! distance sums.
//!
//! The paper's tree proofs are phrased over a tree rooted at a 1-median
//! (Section 3.2); this module provides exactly those primitives.

use crate::error::GraphError;
use crate::graph::Graph;

/// A rooted view of a tree graph with precomputed structure.
///
/// Construction validates that the underlying graph is a tree. All vectors
/// are indexed by node id.
///
/// # Examples
///
/// ```
/// use bncg_graph::{generators, RootedTree};
///
/// let g = generators::path(5);
/// let t = RootedTree::new(&g, 0)?;
/// assert_eq!(t.depth(), 4);
/// assert_eq!(t.layer(3), 3);
/// assert_eq!(t.subtree_size(2), 3);
/// # Ok::<(), bncg_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedTree {
    root: u32,
    parent: Vec<u32>,
    layer: Vec<u32>,
    children: Vec<Vec<u32>>,
    subtree_size: Vec<u32>,
    /// Nodes in BFS order from the root (parents precede children).
    order: Vec<u32>,
    tin: Vec<u32>,
    tout: Vec<u32>,
}

impl RootedTree {
    /// Roots the tree `g` at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotATree`] if `g` is not a tree and
    /// [`GraphError::NodeOutOfRange`] if `root` is out of range.
    pub fn new(g: &Graph, root: u32) -> Result<Self, GraphError> {
        let n = g.n();
        if root as usize >= n {
            return Err(GraphError::NodeOutOfRange { node: root, n });
        }
        if !g.is_tree() {
            return Err(GraphError::NotATree);
        }
        let mut parent = vec![u32::MAX; n];
        let mut layer = vec![0u32; n];
        let mut children = vec![Vec::new(); n];
        let mut order = Vec::with_capacity(n);
        parent[root as usize] = root;
        order.push(root);
        let mut head = 0usize;
        while head < order.len() {
            let u = order[head];
            head += 1;
            for &v in g.neighbors(u) {
                if parent[v as usize] == u32::MAX && v != root {
                    parent[v as usize] = u;
                    layer[v as usize] = layer[u as usize] + 1;
                    children[u as usize].push(v);
                    order.push(v);
                }
            }
        }
        debug_assert_eq!(order.len(), n);

        let mut subtree_size = vec![1u32; n];
        for &u in order.iter().rev() {
            if u != root {
                subtree_size[parent[u as usize] as usize] += subtree_size[u as usize];
            }
        }

        // Euler intervals via iterative DFS for ancestor queries.
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut clock = 0u32;
        let mut stack: Vec<(u32, bool)> = vec![(root, false)];
        while let Some((u, processed)) = stack.pop() {
            if processed {
                tout[u as usize] = clock;
            } else {
                tin[u as usize] = clock;
                clock += 1;
                stack.push((u, true));
                for &c in &children[u as usize] {
                    stack.push((c, false));
                }
            }
        }

        Ok(RootedTree {
            root,
            parent,
            layer,
            children,
            subtree_size,
            order,
            tin,
            tout,
        })
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// The root node.
    #[must_use]
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Parent of `u`; the root is its own parent.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn parent(&self, u: u32) -> u32 {
        self.parent[u as usize]
    }

    /// Layer (distance from the root) of `u` — `ℓ(u)` in the paper.
    #[must_use]
    pub fn layer(&self, u: u32) -> u32 {
        self.layer[u as usize]
    }

    /// Children of `u`.
    #[must_use]
    pub fn children(&self, u: u32) -> &[u32] {
        &self.children[u as usize]
    }

    /// Size of the subtree `T_u` (including `u`).
    #[must_use]
    pub fn subtree_size(&self, u: u32) -> u32 {
        self.subtree_size[u as usize]
    }

    /// Nodes in BFS order from the root; parents precede children.
    #[must_use]
    pub fn bfs_order(&self) -> &[u32] {
        &self.order
    }

    /// Depth of the whole tree: `max_u ℓ(u)`.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.layer.iter().copied().max().unwrap_or(0)
    }

    /// Depth of the subtree `T_u`: `max {dist(u, v) | v ∈ T_u}`.
    #[must_use]
    pub fn subtree_depth(&self, u: u32) -> u32 {
        let mut max = 0;
        for &v in &self.order {
            if self.is_in_subtree(v, u) {
                max = max.max(self.layer(v) - self.layer(u));
            }
        }
        max
    }

    /// Whether `v` lies in the subtree rooted at `u` (`v ∈ T_u`), using the
    /// Euler intervals — `O(1)`.
    #[must_use]
    pub fn is_in_subtree(&self, v: u32, u: u32) -> bool {
        self.tin[u as usize] <= self.tin[v as usize]
            && self.tout[v as usize] <= self.tout[u as usize]
    }

    /// Collects the nodes of the subtree `T_u` in BFS order.
    #[must_use]
    pub fn subtree_nodes(&self, u: u32) -> Vec<u32> {
        self.order
            .iter()
            .copied()
            .filter(|&v| self.is_in_subtree(v, u))
            .collect()
    }

    /// Distance sums `dist(u) = Σ_v dist(u, v)` for every node via the
    /// classic rerooting recurrence, in `O(n)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bncg_graph::{generators, RootedTree};
    ///
    /// let g = generators::star(5);
    /// let t = RootedTree::new(&g, 0)?;
    /// let sums = t.dist_sums();
    /// assert_eq!(sums[0], 4);      // center
    /// assert_eq!(sums[1], 1 + 3 * 2); // a leaf
    /// # Ok::<(), bncg_graph::GraphError>(())
    /// ```
    #[must_use]
    pub fn dist_sums(&self) -> Vec<u64> {
        let n = self.n();
        let mut sums = vec![0u64; n];
        let root_sum: u64 = self.layer.iter().map(|&l| u64::from(l)).sum();
        sums[self.root as usize] = root_sum;
        for &u in &self.order {
            if u == self.root {
                continue;
            }
            let p = self.parent(u);
            let su = u64::from(self.subtree_size(u));
            sums[u as usize] = sums[p as usize] + n as u64 - 2 * su;
        }
        sums
    }

    /// The 1-median(s) of the tree: the nodes minimizing the distance sum.
    /// A tree has one or two medians; two medians are always adjacent.
    ///
    /// # Examples
    ///
    /// ```
    /// use bncg_graph::{generators, RootedTree};
    ///
    /// let path4 = generators::path(4);
    /// let t = RootedTree::new(&path4, 0)?;
    /// assert_eq!(t.one_medians(), vec![1, 2]);
    /// # Ok::<(), bncg_graph::GraphError>(())
    /// ```
    #[must_use]
    pub fn one_medians(&self) -> Vec<u32> {
        let sums = self.dist_sums();
        let min = sums.iter().copied().min().expect("tree is nonempty");
        (0..self.n() as u32)
            .filter(|&u| sums[u as usize] == min)
            .collect()
    }

    /// Sum of distances from `u` into its own subtree,
    /// `dist(u, T_u) = Σ_{v ∈ T_u} dist(u, v)`.
    #[must_use]
    pub fn subtree_dist_sum(&self, u: u32) -> u64 {
        let mut sums = vec![0u64; self.n()];
        for &v in self.order.iter().rev() {
            for &c in self.children(v) {
                sums[v as usize] += sums[c as usize] + u64::from(self.subtree_size(c));
            }
        }
        sums[u as usize]
    }
}

/// Returns the 1-median(s) of a tree graph, validating treeness.
///
/// # Errors
///
/// Returns [`GraphError::NotATree`] if `g` is not a tree.
pub fn tree_medians(g: &Graph) -> Result<Vec<u32>, GraphError> {
    let t = RootedTree::new(g, 0)?;
    Ok(t.one_medians())
}

/// Roots a tree at (one of) its 1-median(s). When there are two medians the
/// smaller node id is chosen, matching the paper's convention of an
/// arbitrary-but-fixed median root.
///
/// # Errors
///
/// Returns [`GraphError::NotATree`] if `g` is not a tree.
pub fn root_at_median(g: &Graph) -> Result<RootedTree, GraphError> {
    let medians = tree_medians(g)?;
    RootedTree::new(g, medians[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal::DistanceMatrix;

    #[test]
    fn rejects_non_trees() {
        let cycle = generators::cycle(4);
        assert_eq!(RootedTree::new(&cycle, 0), Err(GraphError::NotATree));
        let disconnected = Graph::new(3);
        assert_eq!(RootedTree::new(&disconnected, 0), Err(GraphError::NotATree));
        let path = generators::path(3);
        assert_eq!(
            RootedTree::new(&path, 9),
            Err(GraphError::NodeOutOfRange { node: 9, n: 3 })
        );
    }

    #[test]
    fn layers_match_bfs_distances() {
        let g = generators::random_tree(40, &mut crate::test_rng(7));
        let t = RootedTree::new(&g, 3).unwrap();
        let d = DistanceMatrix::new(&g);
        for u in 0..40u32 {
            assert_eq!(t.layer(u), d.dist(3, u));
        }
    }

    #[test]
    fn subtree_sizes_sum_over_children() {
        let g = generators::random_tree(60, &mut crate::test_rng(11));
        let t = RootedTree::new(&g, 0).unwrap();
        for u in 0..60u32 {
            let from_children: u32 = t.children(u).iter().map(|&c| t.subtree_size(c)).sum();
            assert_eq!(t.subtree_size(u), 1 + from_children);
        }
        assert_eq!(t.subtree_size(0), 60);
    }

    #[test]
    fn dist_sums_match_matrix() {
        let g = generators::random_tree(50, &mut crate::test_rng(3));
        let t = RootedTree::new(&g, 5).unwrap();
        let d = DistanceMatrix::new(&g);
        let sums = t.dist_sums();
        for u in 0..50u32 {
            assert_eq!(sums[u as usize], d.row_sum(u).unwrap());
        }
    }

    #[test]
    fn medians_have_all_components_at_most_half() {
        // Jordan: the distance-sum median of a tree is also the centroid.
        let g = generators::random_tree(31, &mut crate::test_rng(19));
        let medians = tree_medians(&g).unwrap();
        assert!(!medians.is_empty() && medians.len() <= 2);
        for &m in &medians {
            let t = RootedTree::new(&g, m).unwrap();
            for &c in t.children(m) {
                assert!(t.subtree_size(c) as usize * 2 <= g.n());
            }
        }
    }

    #[test]
    fn two_medians_are_adjacent() {
        let g = generators::path(6);
        let medians = tree_medians(&g).unwrap();
        assert_eq!(medians, vec![2, 3]);
        assert!(g.has_edge(medians[0], medians[1]));
    }

    #[test]
    fn star_median_is_center() {
        let g = generators::star(9);
        assert_eq!(tree_medians(&g).unwrap(), vec![0]);
        let t = root_at_median(&g).unwrap();
        assert_eq!(t.root(), 0);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn subtree_membership_and_nodes() {
        // path 0-1-2-3-4 rooted at 0
        let g = generators::path(5);
        let t = RootedTree::new(&g, 0).unwrap();
        assert!(t.is_in_subtree(4, 2));
        assert!(t.is_in_subtree(2, 2));
        assert!(!t.is_in_subtree(1, 2));
        assert_eq!(t.subtree_nodes(2), vec![2, 3, 4]);
        assert_eq!(t.subtree_depth(2), 2);
        assert_eq!(t.subtree_depth(4), 0);
    }

    #[test]
    fn subtree_dist_sum_matches_matrix() {
        let g = generators::random_tree(30, &mut crate::test_rng(23));
        let t = RootedTree::new(&g, 0).unwrap();
        let d = DistanceMatrix::new(&g);
        for u in 0..30u32 {
            let expected: u64 = t
                .subtree_nodes(u)
                .iter()
                .map(|&v| u64::from(d.dist(u, v)))
                .sum();
            assert_eq!(t.subtree_dist_sum(u), expected);
        }
    }

    #[test]
    fn bfs_order_puts_parents_first() {
        let g = generators::random_tree(25, &mut crate::test_rng(31));
        let t = RootedTree::new(&g, 4).unwrap();
        let pos: Vec<usize> = {
            let mut pos = vec![0; 25];
            for (i, &u) in t.bfs_order().iter().enumerate() {
                pos[u as usize] = i;
            }
            pos
        };
        for u in 0..25u32 {
            if u != t.root() {
                assert!(pos[t.parent(u) as usize] < pos[u as usize]);
            }
        }
    }

    #[test]
    fn single_node_tree() {
        let g = Graph::new(1);
        let t = RootedTree::new(&g, 0).unwrap();
        assert_eq!(t.depth(), 0);
        assert_eq!(t.one_medians(), vec![0]);
        assert_eq!(t.dist_sums(), vec![0]);
        assert_eq!(t.subtree_dist_sum(0), 0);
    }
}
