//! Atlas-backed serving: the daemon-side half of the `atlas_lookup` op.
//!
//! The daemon optionally holds a precomputed stability corpus
//! ([`bncg_atlas::DynAtlas`]). An `atlas_lookup` request canonicalizes
//! the query graph, probes the corpus, and — on a **conclusive** hit —
//! answers inline with the stored verdict at **zero solver cost**: no
//! scheduler submission, no slice, and not a single candidate
//! evaluation charged to the tenant's pool (`"evals":0,"slices":0`,
//! `"source":"atlas"`). Anything else — no atlas loaded, instance above
//! the enumeration ceiling, class not stored, or only an `exhausted`
//! record on file — is a **miss**: the request falls through to a
//! scheduled live check whose response carries `"source":"live"`.
//!
//! Hit and miss counters feed the `stats` op so operators can see what
//! share of lookup traffic the corpus is absorbing.

use crate::protocol::render_move;
use bncg_atlas::DynAtlas;
use bncg_core::{Alpha, Concept, CostModelSpec};
use bncg_graph::enumerate::MAX_GRAPH_CLASS_NODES;
use bncg_graph::Graph;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The daemon's view of the (optional) stability corpus, plus serving
/// counters. Shared read-only across connection threads — the atlas is
/// immutable once loaded, so lookups need no lock.
pub struct AtlasService {
    atlas: Option<DynAtlas>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl fmt::Debug for AtlasService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtlasService")
            .field("loaded", &self.atlas.is_some())
            .field("records", &self.atlas.as_ref().map_or(0, DynAtlas::len))
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl Default for AtlasService {
    fn default() -> Self {
        AtlasService::empty()
    }
}

impl AtlasService {
    /// A service with no corpus: every lookup misses through to a live
    /// check. This is the default daemon configuration.
    #[must_use]
    pub fn empty() -> Self {
        AtlasService {
            atlas: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A service answering from `atlas`.
    #[must_use]
    pub fn with_atlas(atlas: DynAtlas) -> Self {
        AtlasService {
            atlas: Some(atlas),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Whether a corpus is loaded.
    #[must_use]
    pub fn loaded(&self) -> bool {
        self.atlas.is_some()
    }

    /// Lookups answered from the corpus since startup.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to a live check since startup.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Tries to answer an `atlas_lookup` from the corpus. `Some` is the
    /// complete response line (a hit — the caller writes it and is
    /// done); `None` is a miss (the caller submits the equivalent live
    /// check). Counters are bumped either way. The corpus is built
    /// under the default cost model only, so a non-default
    /// `cost_model` is a counted miss without probing the index.
    #[must_use]
    pub fn try_answer(
        &self,
        id: u64,
        concept: Concept,
        graph: &Graph,
        alpha: Alpha,
        cost_model: CostModelSpec,
    ) -> Option<String> {
        if !cost_model.is_default() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        match self.probe(id, concept, graph, alpha) {
            Some(line) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(line)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn probe(&self, id: u64, concept: Concept, graph: &Graph, alpha: Alpha) -> Option<String> {
        let atlas = self.atlas.as_ref()?;
        // Canonicalization cost grows with n!-shaped search; above the
        // enumeration ceiling the corpus cannot contain the class
        // anyway, so don't even canonicalize.
        if graph.n() > MAX_GRAPH_CLASS_NODES {
            return None;
        }
        // A lookup error (unkeyable graph, torn index) degrades to a
        // miss: the live path still produces a correct answer.
        let hit = atlas.lookup(graph, concept, alpha).ok().flatten()?;
        match hit.record.verdict.is_stable()? {
            true => Some(format!(
                "{{\"id\":{id},\"ok\":1,\"op\":\"atlas_lookup\",\"source\":\"atlas\",\
                 \"verdict\":\"stable\",\"evals\":0,\"slices\":0}}"
            )),
            false => {
                let witness = hit.witness?;
                Some(format!(
                    "{{\"id\":{id},\"ok\":1,\"op\":\"atlas_lookup\",\"source\":\"atlas\",\
                     \"verdict\":\"unstable\",\"witness\":{},\"evals\":0,\"slices\":0}}",
                    render_move(&witness)
                ))
            }
        }
    }
}

/// Rewrites a live `check` response line into `atlas_lookup` shape: the
/// op field becomes `atlas_lookup` and `"source":"live"` is added, so
/// fall-through responses are distinguishable from corpus hits while
/// carrying the identical verdict payload. Error responses (shed, bad
/// request) have no op field and pass through unchanged.
#[must_use]
pub fn relabel_live_response(line: &str) -> String {
    line.replacen(
        "\"op\":\"check\"",
        "\"op\":\"atlas_lookup\",\"source\":\"live\"",
        1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_atlas::{build, Atlas, BuildSpec, MemoryBacking, RamBacking};
    use bncg_core::jsonio;
    use bncg_graph::generators;

    fn service_n4() -> AtlasService {
        let mut atlas = Atlas::open(RamBacking::new()).unwrap();
        build(&mut atlas, &BuildSpec::standard(4), 1_000_000, None).unwrap();
        // Re-open over a type-erased backing, as the daemon would.
        let mut boxed: Box<dyn MemoryBacking + Send + Sync> = Box::new(RamBacking::new());
        atlas
            .backing()
            .for_each_line(&mut |_, line| boxed.append_line(line).unwrap())
            .unwrap();
        AtlasService::with_atlas(Atlas::open(boxed).unwrap())
    }

    #[test]
    fn conclusive_hits_answer_inline_with_zero_cost() {
        let svc = service_n4();
        let g = generators::path(4);
        let line = svc
            .try_answer(
                7,
                Concept::Bae,
                &g,
                Alpha::from_ratio(1, 2).unwrap(),
                CostModelSpec::SumDistances,
            )
            .expect("P4 BAE at α=1/2 is in the standard n≤4 grid");
        assert_eq!(jsonio::u64_field(&line, "id"), Some(7));
        assert_eq!(jsonio::str_field(&line, "source"), Some("atlas"));
        assert_eq!(jsonio::str_field(&line, "verdict"), Some("unstable"));
        assert_eq!(jsonio::u64_field(&line, "evals"), Some(0));
        assert!(jsonio::object_field(&line, "witness").is_some());
        assert_eq!((svc.hits(), svc.misses()), (1, 0));
    }

    #[test]
    fn off_grid_and_oversize_queries_miss() {
        let svc = service_n4();
        // α = 7 is not on the standard grid for n = 4.
        let g = generators::path(4);
        assert!(svc
            .try_answer(
                1,
                Concept::Bae,
                &g,
                Alpha::integer(7).unwrap(),
                CostModelSpec::SumDistances,
            )
            .is_none());
        // n = 5 is beyond the built ceiling.
        assert!(svc
            .try_answer(
                2,
                Concept::Bae,
                &generators::path(5),
                Alpha::integer(2).unwrap(),
                CostModelSpec::SumDistances,
            )
            .is_none());
        // n far beyond the enumeration ceiling short-circuits.
        assert!(svc
            .try_answer(
                3,
                Concept::Re,
                &generators::path(64),
                Alpha::integer(2).unwrap(),
                CostModelSpec::SumDistances,
            )
            .is_none());
        assert_eq!((svc.hits(), svc.misses()), (0, 3));
    }

    #[test]
    fn non_default_cost_model_is_a_counted_miss() {
        let svc = service_n4();
        // P4 BAE at α=1/2 is a corpus hit under the default model; any
        // other model must fall through to live without probing.
        let g = generators::path(4);
        assert!(svc
            .try_answer(
                9,
                Concept::Bae,
                &g,
                Alpha::from_ratio(1, 2).unwrap(),
                "generalized:cap2".parse().unwrap(),
            )
            .is_none());
        assert_eq!((svc.hits(), svc.misses()), (0, 1));
    }

    #[test]
    fn empty_service_always_misses() {
        let svc = AtlasService::empty();
        assert!(!svc.loaded());
        assert!(svc
            .try_answer(
                1,
                Concept::Re,
                &generators::path(4),
                Alpha::integer(2).unwrap(),
                CostModelSpec::SumDistances,
            )
            .is_none());
        assert_eq!((svc.hits(), svc.misses()), (0, 1));
    }

    #[test]
    fn live_responses_are_relabeled() {
        let live = "{\"id\":3,\"ok\":1,\"op\":\"check\",\"verdict\":\"stable\",\
                    \"evals\":12,\"slices\":2}";
        let out = relabel_live_response(live);
        assert_eq!(jsonio::str_field(&out, "op"), Some("atlas_lookup"));
        assert_eq!(jsonio::str_field(&out, "source"), Some("live"));
        assert_eq!(jsonio::u64_field(&out, "evals"), Some(12));
        let shed = "{\"id\":3,\"ok\":0,\"error\":\"shed\",\"reason\":\"x\"}";
        assert_eq!(relabel_live_response(shed), shed);
    }
}
