//! Append-only persistence for tenant grants and weights.
//!
//! The daemon's control plane is tiny — `grant` lines fund tenants and
//! set their scheduling weights — but losing it on restart zeroes out
//! every provisioned tenant. This module journals each control action
//! as one line of the repo's escape-free flat JSON to `grants.jsonl`,
//! with the same torn-tail discipline as the atlas segments
//! (`bncg_atlas`): a crash mid-append leaves at most one line without a
//! trailing newline, and [`GrantJournal::open`] truncates that torn
//! tail before replaying, so replay never interprets half a record.
//!
//! The journal is a log of *events*, not a snapshot: a tenant granted
//! 50 then topped up by 25 appears as two lines whose replay reproduces
//! the cumulative 75. Weights are absolute (last write wins). Usage
//! (`used`) is deliberately not journaled — a restart refunds in-flight
//! work, which is the forgiving failure mode.

use bncg_core::jsonio;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// File name used when the journal path is a directory.
pub const GRANTS_FILE: &str = "grants.jsonl";

/// One replayed control-plane action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrantEvent {
    /// `{"tenant":…,"evals":…}` — fund the tenant by `evals`
    /// (create-with-exactly on first sight, top-up afterwards — the
    /// same semantics as the live `grant` op).
    Grant {
        /// The funded tenant.
        tenant: String,
        /// Evaluations granted by this event.
        evals: u64,
    },
    /// `{"tenant":…,"weight":…}` — set the tenant's scheduling weight
    /// (absolute; the latest line wins).
    Weight {
        /// The reweighted tenant.
        tenant: String,
        /// The stored weight (≥ 1).
        weight: u64,
    },
}

/// The open journal: an append handle plus the path it lives at.
#[derive(Debug)]
pub struct GrantJournal {
    file: File,
    path: PathBuf,
}

impl GrantJournal {
    /// Opens (creating if absent) the journal at `path` — a file path,
    /// or a directory under which [`GRANTS_FILE`] is used. Returns the
    /// journal plus every complete event already on disk, in append
    /// order; a torn trailing line is truncated away, not replayed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (open, read, truncate).
    pub fn open(path: &Path) -> io::Result<(GrantJournal, Vec<GrantEvent>)> {
        let path = if path.is_dir() {
            path.join(GRANTS_FILE)
        } else {
            path.to_path_buf()
        };
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let complete = match raw.iter().rposition(|&b| b == b'\n') {
            Some(last) => last + 1,
            None => 0,
        };
        if complete < raw.len() {
            file.set_len(complete as u64)?;
        }
        let mut events = Vec::new();
        for line in String::from_utf8_lossy(&raw[..complete]).lines() {
            let Some(tenant) = jsonio::str_field(line, "tenant") else {
                continue;
            };
            if let Some(evals) = jsonio::u64_field(line, "evals") {
                events.push(GrantEvent::Grant {
                    tenant: tenant.to_string(),
                    evals,
                });
            }
            if let Some(weight) = jsonio::u64_field(line, "weight") {
                events.push(GrantEvent::Weight {
                    tenant: tenant.to_string(),
                    weight,
                });
            }
        }
        Ok((GrantJournal { file, path }, events))
    }

    /// Where the journal lives (resolved from a directory argument).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a funding event.
    ///
    /// # Errors
    ///
    /// Propagates the write failure; the in-memory grant has already
    /// been applied by the caller, so a failed append degrades to
    /// non-persistence, not to a rejected grant.
    pub fn record_grant(&mut self, tenant: &str, evals: u64) -> io::Result<()> {
        self.append(tenant, "evals", evals)
    }

    /// Appends a reweighting event (absolute weight).
    ///
    /// # Errors
    ///
    /// Propagates the write failure (see [`GrantJournal::record_grant`]).
    pub fn record_weight(&mut self, tenant: &str, weight: u64) -> io::Result<()> {
        self.append(tenant, "weight", weight)
    }

    fn append(&mut self, tenant: &str, key: &str, value: u64) -> io::Result<()> {
        // Wire-parsed tenant names are already alphabet-restricted; an
        // embedder-supplied name that would break the escape-free line
        // format is skipped rather than journaled corrupt.
        if !crate::protocol::valid_tenant_name(tenant) {
            return Ok(());
        }
        self.file
            .write_all(format!("{{\"tenant\":\"{tenant}\",\"{key}\":{value}}}\n").as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bncg-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn events_replay_in_append_order() {
        let dir = tmpdir("replay");
        let (mut j, events) = GrantJournal::open(&dir).unwrap();
        assert!(events.is_empty());
        j.record_grant("alice", 50).unwrap();
        j.record_grant("alice", 25).unwrap();
        j.record_weight("bob", 4).unwrap();
        drop(j);
        let (_, events) = GrantJournal::open(&dir).unwrap();
        assert_eq!(
            events,
            vec![
                GrantEvent::Grant {
                    tenant: "alice".into(),
                    evals: 50
                },
                GrantEvent::Grant {
                    tenant: "alice".into(),
                    evals: 25
                },
                GrantEvent::Weight {
                    tenant: "bob".into(),
                    weight: 4
                },
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_replayed() {
        let dir = tmpdir("torn");
        let (mut j, _) = GrantJournal::open(&dir).unwrap();
        j.record_grant("alice", 50).unwrap();
        let path = j.path().to_path_buf();
        drop(j);
        // Simulate a crash mid-append: a partial record with no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"tenant\":\"mallory\",\"evals\":99")
            .unwrap();
        drop(f);
        let (mut j, events) = GrantJournal::open(&dir).unwrap();
        assert_eq!(events.len(), 1, "torn line must not replay: {events:?}");
        // The truncated file accepts fresh appends cleanly.
        j.record_weight("alice", 2).unwrap();
        drop(j);
        let (_, events) = GrantJournal::open(&dir).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[1],
            GrantEvent::Weight {
                tenant: "alice".into(),
                weight: 2
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_names_are_not_journaled() {
        let dir = tmpdir("hostile");
        let (mut j, _) = GrantJournal::open(&dir).unwrap();
        j.record_grant("ok", 1).unwrap();
        j.record_grant("evil\"name", 2).unwrap();
        drop(j);
        let (_, events) = GrantJournal::open(&dir).unwrap();
        assert_eq!(events.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
