//! # bncg-serve
//!
//! A long-running stability-checking daemon over the game surface of
//! [`bncg_core`]: clients connect over TCP, send one line-delimited
//! JSON request per query — stability checks, best responses,
//! round-robin trajectories, improving-move dynamics — and receive one
//! response line per request, correlated by `id` rather than order.
//!
//! The interesting part is not the sockets, it is the **time-slicing
//! scheduler** underneath ([`scheduler`]). The solver surface's anytime
//! contract — every stopped scan returns a serializable frontier whose
//! resumption replays the *identical* verdict — means a query does not
//! need a dedicated thread for its whole lifetime. Instead, each
//! resident query runs as a chain of bounded evaluation slices through
//! a fixed worker pool; a slice that exhausts its quantum requeues at
//! the back of the run queue with its frontier in hand. Thousands of
//! concurrent queries interleave fairly over a handful of workers, and
//! the chain's final verdict, witness, and cumulative evaluation count
//! equal an uninterrupted run's (the property the `serve` end-to-end
//! tests and the `sched_slicing_overhead` CI kernel pin down).
//!
//! Fairness across clients is two-layered. **Budget** caps total
//! compute: every query names a **tenant**, each tenant owns a
//! [`BudgetPool`], and a drained pool sheds that tenant's queries with
//! **zero further work** — carrying their resume tokens, so shed work
//! is suspended rather than lost ([`tenant`]). **Weight** shapes
//! latency: tenants hold per-tenant queues drained by weighted
//! deficit round-robin, so a tenant with ten thousand queued checks
//! delays another tenant's single query by at most one round of
//! slices, and a weight set via `grant` skews throughput
//! proportionally ([`scheduler`]). Grants and weights are journaled
//! append-only ([`journal`]) and replayed on restart.
//!
//! The front end is a single **readiness loop** ([`server`], over the
//! `poll(2)` substrate in [`reactor`]): non-blocking sockets, one
//! thread for every connection, per-connection buffers with
//! backpressure. Queries submitted with `"stream":1` additionally emit
//! a `progress` frame per requeued slice before the final line.
//!
//! The wire format ([`protocol`]) is the repo's escape-free flat-JSON
//! dialect — the same [`bncg_core::jsonio`] toolkit the resume tokens
//! themselves use, so tokens embed in requests and responses verbatim.
//! The full schema is documented in `docs/PROTOCOL.md`.
//!
//! ## Quickstart
//!
//! ```
//! use bncg_serve::server::{Server, ServerConfig};
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//!
//! let server = Server::start(ServerConfig::default())?;
//! let mut conn = TcpStream::connect(server.addr())?;
//! // A path of 5 nodes is not pairwise stable at α = 2: the ends
//! // profit from a joint shortcut edge.
//! conn.write_all(
//!     b"{\"id\":1,\"op\":\"check\",\"concept\":\"ps\",\"alpha\":\"2\",\
//!       \"n\":5,\"edges\":[1,4294967298,8589934595,12884901892]}\n",
//! )?;
//! let mut line = String::new();
//! BufReader::new(conn.try_clone()?).read_line(&mut line)?;
//! assert!(line.contains("\"verdict\":\"unstable\""));
//! server.stop();
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! [`BudgetPool`]: bncg_core::BudgetPool
//! [`ExecPolicy::batch_budget`]: bncg_core::ExecPolicy::batch_budget

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod atlas;
pub mod journal;
pub mod protocol;
pub mod reactor;
pub mod scheduler;
pub mod server;
pub mod tenant;

pub use atlas::AtlasService;
pub use journal::{GrantEvent, GrantJournal};
pub use protocol::{parse_request, BadRequest, Request, TenantRow};
pub use scheduler::{QuerySpec, Scheduler, SchedulerConfig, Work};
pub use server::{Server, ServerConfig};
pub use tenant::{Tenant, TenantRegistry, TenantStats};
