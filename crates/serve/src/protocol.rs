//! The line-delimited JSON wire protocol: one request object per line in,
//! one response object per line out (correlated by `id`, not by order).
//!
//! The full schema lives in `docs/PROTOCOL.md`; this module is the
//! executable half. Parsing is built on [`bncg_core::jsonio`] — the same
//! escape-free flat-JSON toolkit the resume tokens use — which imposes
//! the protocol's two structural rules:
//!
//! * **no escapes anywhere**: strings never contain `"`, `\`, braces, or
//!   brackets (tenant names are validated against that alphabet, and
//!   outbound free text is passed through [`sanitize`]);
//! * **`"resume"` carries the nested token verbatim** — a solver
//!   [`Frontier`](bncg_core::Frontier) for `check`, a
//!   [`BestResponseFrontier`](bncg_core::BestResponseFrontier) for
//!   `best_response`, a [`round_robin::Checkpoint`] for `trajectory`, a
//!   [`DynamicsCheckpoint`] for `dynamics`. Nested tokens share field
//!   names with the request (`evals`, `instance`, …), so the parser
//!   splits the resume object off *before* reading the request's own
//!   fields and the split is position-independent (clients should still
//!   put `resume` last, as every emitted token does).
//!
//! Graphs travel as a node count `n` plus `edges`, an array of edges
//! packed one per `u64` as `(u << 32) | v` — not graph6, whose alphabet
//! contains `\` and would break the no-escape rule.
//!
//! [`round_robin::Checkpoint`]: bncg_dynamics::round_robin::Checkpoint
//! [`DynamicsCheckpoint`]: bncg_dynamics::DynamicsCheckpoint

use bncg_core::{jsonio, Alpha, Concept, CostModelSpec, Move};
use bncg_graph::Graph;

/// Tenant used when a request omits the `tenant` field.
pub const DEFAULT_TENANT: &str = "public";

/// Hard node-count ceiling per request. Polynomial concepts would happily
/// run far larger, but each resident query carries an `n × n` distance
/// matrix, so the daemon bounds the per-query memory a client can demand.
pub const MAX_N: usize = 1024;

/// Longest tenant name the registry accepts.
pub const MAX_TENANT_LEN: usize = 64;

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// `op:"check"` — a stability query for `concept` on the instance.
    Check {
        /// Client-chosen correlation id (echoed in the response).
        id: u64,
        /// Tenant whose budget pool meters the work.
        tenant: String,
        /// The queried solution concept.
        concept: Concept,
        /// Edge price α.
        alpha: Alpha,
        /// Cost model the query prices moves under (absent field on the
        /// wire → [`CostModelSpec::SumDistances`]).
        cost_model: CostModelSpec,
        /// The instance graph.
        graph: Graph,
        /// A previously returned resume token, verbatim.
        resume: Option<String>,
        /// Per-query wall-clock allowance in milliseconds.
        deadline_ms: Option<u64>,
        /// `"stream":1` — emit a `progress` frame per requeued slice
        /// before the final response line.
        stream: bool,
    },
    /// `op:"best_response"` — the best feasible neighborhood move of
    /// `agent`.
    BestResponse {
        /// Client-chosen correlation id.
        id: u64,
        /// Tenant whose budget pool meters the work.
        tenant: String,
        /// The optimizing agent.
        agent: u32,
        /// Edge price α.
        alpha: Alpha,
        /// Cost model the query prices moves under.
        cost_model: CostModelSpec,
        /// The instance graph.
        graph: Graph,
        /// A previously returned resume token, verbatim.
        resume: Option<String>,
        /// Per-query wall-clock allowance in milliseconds.
        deadline_ms: Option<u64>,
        /// `"stream":1` — emit a `progress` frame per requeued slice.
        stream: bool,
    },
    /// `op:"trajectory"` — round-robin best-response dynamics from the
    /// instance, for at most `rounds` rounds.
    Trajectory {
        /// Client-chosen correlation id.
        id: u64,
        /// Tenant whose budget pool meters the work.
        tenant: String,
        /// Edge price α.
        alpha: Alpha,
        /// Cost model the dynamics price activations under.
        cost_model: CostModelSpec,
        /// The starting graph (on resume: the `final_edges` of the shed
        /// response the token came from).
        graph: Graph,
        /// Round cap (a round activates every agent once).
        rounds: usize,
        /// A previously returned resume token, verbatim.
        resume: Option<String>,
        /// Per-query wall-clock allowance in milliseconds.
        deadline_ms: Option<u64>,
        /// `"stream":1` — emit a `progress` frame per requeued slice
        /// (round, moves, evals so far) before the final line.
        stream: bool,
    },
    /// `op:"dynamics"` — improving-move dynamics under `concept`
    /// (deterministic first-violation rule), for at most `steps` moves.
    Dynamics {
        /// Client-chosen correlation id.
        id: u64,
        /// Tenant whose budget pool meters the work.
        tenant: String,
        /// The concept whose violations drive the dynamics.
        concept: Concept,
        /// Edge price α.
        alpha: Alpha,
        /// Cost model the dynamics price moves under.
        cost_model: CostModelSpec,
        /// The starting graph (on resume: the `final_edges` of the shed
        /// response the token came from).
        graph: Graph,
        /// Step cap.
        steps: usize,
        /// A previously returned resume token, verbatim.
        resume: Option<String>,
        /// Per-query wall-clock allowance in milliseconds.
        deadline_ms: Option<u64>,
        /// `"stream":1` — emit a `progress` frame per requeued slice
        /// (steps, evals so far) before the final line.
        stream: bool,
    },
    /// `op:"atlas_lookup"` — a stability query answered from the
    /// precomputed atlas when the instance's canonical class is stored
    /// (zero solver cost), falling through to a scheduled live check
    /// otherwise. Same payload as `check`.
    AtlasLookup {
        /// Client-chosen correlation id (echoed in the response).
        id: u64,
        /// Tenant whose budget pool meters a live fall-through.
        tenant: String,
        /// The queried solution concept.
        concept: Concept,
        /// Edge price α.
        alpha: Alpha,
        /// Cost model the query prices moves under. A non-default model
        /// always falls through to a live check — the atlas corpus is
        /// priced under the default model only.
        cost_model: CostModelSpec,
        /// The instance graph.
        graph: Graph,
        /// A previously returned resume token, verbatim (only a live
        /// fall-through ever emits one).
        resume: Option<String>,
        /// Per-query wall-clock allowance in milliseconds.
        deadline_ms: Option<u64>,
        /// `"stream":1` — emit a `progress` frame per requeued slice of
        /// a live fall-through (an atlas hit answers in one frame).
        stream: bool,
    },
    /// `op:"grant"` — control plane: fund a tenant and/or set its
    /// scheduling weight. `evals` creates the tenant with exactly that
    /// grant (or tops an existing tenant up); `weight` is absolute. At
    /// least one of the two must be present.
    Grant {
        /// Client-chosen correlation id.
        id: u64,
        /// The tenant to fund or reweight.
        tenant: String,
        /// Evaluations to grant, when present.
        evals: Option<u64>,
        /// Deficit round-robin weight to store (clamped to ≥ 1), when
        /// present.
        weight: Option<u64>,
    },
    /// `op:"stats"` — control plane: queue depth and per-tenant
    /// accounting.
    Stats {
        /// Client-chosen correlation id.
        id: u64,
    },
    /// `op:"shutdown"` — control plane: stop accepting connections,
    /// drain in-flight queries, exit.
    Shutdown {
        /// Client-chosen correlation id.
        id: u64,
    },
}

impl Request {
    /// The request's correlation id.
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            Request::Check { id, .. }
            | Request::BestResponse { id, .. }
            | Request::Trajectory { id, .. }
            | Request::Dynamics { id, .. }
            | Request::AtlasLookup { id, .. }
            | Request::Grant { id, .. }
            | Request::Stats { id }
            | Request::Shutdown { id } => *id,
        }
    }
}

/// A request the daemon refuses to run, answered with
/// `{"id":…,"ok":0,"error":"bad_request","reason":…}`.
#[derive(Debug, Clone)]
pub struct BadRequest {
    /// The offending request's id (0 when even that was unreadable).
    pub id: u64,
    /// Human-readable cause (sanitized before serialization).
    pub reason: String,
}

/// Splits the `"resume": {…}` object off a request line, returning the
/// line with that span removed plus the object verbatim. Nested tokens
/// share field names with the request, so every other field must be
/// extracted from the returned head, never from the raw line.
#[must_use]
pub fn split_resume(line: &str) -> (String, Option<String>) {
    let Some(obj) = jsonio::object_field(line, "resume") else {
        return (line.to_string(), None);
    };
    // `object_field` returns a subslice of `line`; recover its offset to
    // cut the `"resume": {…}` span (key included) out of the head.
    let obj_start = obj.as_ptr() as usize - line.as_ptr() as usize;
    let key_start = line[..obj_start].rfind("\"resume\"").unwrap_or(obj_start);
    let mut head = String::with_capacity(line.len() - obj.len());
    head.push_str(&line[..key_start]);
    head.push_str(&line[obj_start + obj.len()..]);
    (head, Some(obj.to_string()))
}

/// Parses one request line.
///
/// # Errors
///
/// [`BadRequest`] with the line's `id` (0 if absent) and the cause; the
/// caller serializes it as an error response instead of dropping the
/// line silently.
pub fn parse_request(line: &str) -> Result<Request, BadRequest> {
    let (head, resume) = split_resume(line);
    let id = jsonio::u64_field(&head, "id").unwrap_or(0);
    let bad = |reason: String| BadRequest { id, reason };
    let op = jsonio::str_field(&head, "op")
        .ok_or_else(|| bad("missing \"op\"".into()))?
        .to_string();
    let tenant = || -> Result<String, BadRequest> {
        let name = jsonio::str_field(&head, "tenant").unwrap_or(DEFAULT_TENANT);
        validate_tenant(name).map_err(&bad)?;
        Ok(name.to_string())
    };
    let alpha = || -> Result<Alpha, BadRequest> {
        jsonio::str_field(&head, "alpha")
            .ok_or_else(|| bad("missing \"alpha\"".into()))?
            .parse()
            .map_err(|e| bad(format!("bad \"alpha\": {e}")))
    };
    let concept = || -> Result<Concept, BadRequest> {
        jsonio::str_field(&head, "concept")
            .ok_or_else(|| bad("missing \"concept\"".into()))?
            .parse()
            .map_err(|e| bad(format!("bad \"concept\": {e}")))
    };
    let graph = || parse_graph(&head).map_err(&bad);
    let cost_model = || -> Result<CostModelSpec, BadRequest> {
        match jsonio::str_field(&head, "cost_model") {
            None => Ok(CostModelSpec::SumDistances),
            Some(t) => t
                .parse()
                .map_err(|e| bad(format!("bad \"cost_model\": {e}"))),
        }
    };
    let deadline_ms = jsonio::u64_field(&head, "deadline_ms");
    let stream = jsonio::u64_field(&head, "stream").unwrap_or(0) != 0;
    match op.as_str() {
        "check" => Ok(Request::Check {
            id,
            tenant: tenant()?,
            concept: concept()?,
            alpha: alpha()?,
            cost_model: cost_model()?,
            graph: graph()?,
            resume,
            deadline_ms,
            stream,
        }),
        "best_response" => Ok(Request::BestResponse {
            id,
            tenant: tenant()?,
            agent: u32::try_from(
                jsonio::u64_field(&head, "agent").ok_or_else(|| bad("missing \"agent\"".into()))?,
            )
            .map_err(|_| bad("\"agent\" overflows u32".into()))?,
            alpha: alpha()?,
            cost_model: cost_model()?,
            graph: graph()?,
            resume,
            deadline_ms,
            stream,
        }),
        "trajectory" => Ok(Request::Trajectory {
            id,
            tenant: tenant()?,
            alpha: alpha()?,
            cost_model: cost_model()?,
            graph: graph()?,
            rounds: jsonio::u64_field(&head, "rounds").unwrap_or(100) as usize,
            resume,
            deadline_ms,
            stream,
        }),
        "dynamics" => Ok(Request::Dynamics {
            id,
            tenant: tenant()?,
            concept: concept()?,
            alpha: alpha()?,
            cost_model: cost_model()?,
            graph: graph()?,
            steps: jsonio::u64_field(&head, "steps").unwrap_or(1000) as usize,
            resume,
            deadline_ms,
            stream,
        }),
        "atlas_lookup" => Ok(Request::AtlasLookup {
            id,
            tenant: tenant()?,
            concept: concept()?,
            alpha: alpha()?,
            cost_model: cost_model()?,
            graph: graph()?,
            resume,
            deadline_ms,
            stream,
        }),
        "grant" => {
            let evals = jsonio::u64_field(&head, "evals");
            let weight = jsonio::u64_field(&head, "weight");
            if evals.is_none() && weight.is_none() {
                return Err(bad("grant needs \"evals\" and/or \"weight\"".into()));
            }
            Ok(Request::Grant {
                id,
                tenant: tenant()?,
                evals,
                weight,
            })
        }
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(bad(format!("unknown op {other:?}"))),
    }
}

/// Whether `name` fits the wire protocol's tenant alphabet (used by the
/// grants journal to refuse names that would corrupt the line format).
pub(crate) fn valid_tenant_name(name: &str) -> bool {
    validate_tenant(name).is_ok()
}

fn validate_tenant(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > MAX_TENANT_LEN {
        return Err(format!(
            "tenant name must be 1..={MAX_TENANT_LEN} characters"
        ));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | '@'))
    {
        return Err("tenant name may only contain ASCII alphanumerics, \
                    '-', '_', '.', '@'"
            .into());
    }
    Ok(())
}

fn parse_graph(head: &str) -> Result<Graph, String> {
    let n = jsonio::u64_field(head, "n").ok_or("missing \"n\"")? as usize;
    if n > MAX_N {
        return Err(format!("\"n\" exceeds the daemon's limit of {MAX_N}"));
    }
    let packed = jsonio::u64_list_field(head, "edges").unwrap_or_default();
    let edges = packed.iter().map(|&p| unpack_edge(p));
    Graph::from_edges(n, edges).map_err(|e| format!("bad \"edges\": {e}"))
}

/// Packs an edge as `(u << 32) | v` for the `edges` wire arrays.
#[must_use]
pub fn pack_edge(u: u32, v: u32) -> u64 {
    (u64::from(u) << 32) | u64::from(v)
}

/// Inverse of [`pack_edge`].
#[must_use]
pub fn unpack_edge(p: u64) -> (u32, u32) {
    ((p >> 32) as u32, p as u32)
}

/// Renders a graph's edge set as a packed-edge JSON array (the
/// `final_edges` response field).
#[must_use]
pub fn render_edges(g: &Graph) -> String {
    let packed: Vec<u64> = g.edges().map(|(u, v)| pack_edge(u, v)).collect();
    jsonio::render_u64_list(&packed)
}

/// Renders a witness [`Move`] as a JSON object (`witness`/`move`
/// response fields). Edge pairs are packed like the wire arrays. This is
/// [`Move::render_json`] — the atlas stores witnesses in the identical
/// format, so a stored verdict serves byte-for-byte like a live one.
#[must_use]
pub fn render_move(mv: &Move) -> String {
    mv.render_json()
}

/// Makes free text (error reasons) safe for the escape-free wire format:
/// quotes, backslashes, braces, brackets, and control characters are
/// replaced, not escaped. Lossy by design — these strings are for
/// humans, never re-parsed.
#[must_use]
pub fn sanitize(text: &str) -> String {
    text.chars()
        .map(|c| match c {
            '"' => '\'',
            '\\' => '/',
            '{' | '[' => '(',
            '}' | ']' => ')',
            c if c.is_control() => ' ',
            c => c,
        })
        .collect()
}

/// One per-tenant row of the `stats` response: pool accounting merged
/// with the scheduler's queue-side view.
#[derive(Debug, Clone)]
pub struct TenantRow {
    /// Tenant name (sanitized before rendering).
    pub name: String,
    /// Lifetime evaluations granted.
    pub granted: u64,
    /// Lifetime evaluations consumed.
    pub used: u64,
    /// Deficit round-robin weight.
    pub weight: u64,
    /// Jobs queued (not currently running a slice).
    pub queued: u64,
    /// Jobs mid-slice right now.
    pub in_flight: u64,
    /// Cumulative milliseconds this tenant's jobs have spent queued
    /// (summed over every dispatch, so it only grows).
    pub waited_ms: u64,
}

/// Renders one `stats` tenant row. The name passes through
/// [`sanitize`] — a hostile registered name can garble *its own* label
/// but cannot break the response line's structure.
#[must_use]
pub fn render_tenant_row(row: &TenantRow) -> String {
    format!(
        "{{\"tenant\":\"{}\",\"granted\":{},\"used\":{},\"weight\":{},\
         \"queued\":{},\"in_flight\":{},\"waited_ms\":{}}}",
        sanitize(&row.name),
        row.granted,
        row.used,
        row.weight,
        row.queued,
        row.in_flight,
        row.waited_ms
    )
}

/// Renders one streaming `progress` frame from a job's freshly
/// serialized resume token. The token is the scheduler's own
/// checkpoint, so the frame reports exactly what a shed would resume
/// from: cumulative `evals`, plus whichever of `round`/`moves`/`steps`
/// the op's checkpoint carries. Distinguished from the final line by
/// `"progress":1`; correlated by `id` like every response.
#[must_use]
pub fn progress_frame(id: u64, op: &str, slices: u64, token: &str) -> String {
    let mut out =
        format!("{{\"id\":{id},\"ok\":1,\"op\":\"{op}\",\"progress\":1,\"slices\":{slices}");
    for key in ["evals", "round", "moves", "steps"] {
        if let Some(v) = jsonio::u64_field(token, key) {
            out.push_str(&format!(",\"{key}\":{v}"));
        }
    }
    out.push('}');
    out
}

/// Renders the uniform error response:
/// `{"id":…,"ok":0,"error":…,"reason":…}` plus, when partial work
/// exists, the `resume` token (and for trajectory ops the
/// `final_edges` to restart it against).
#[must_use]
pub fn error_response(
    id: u64,
    error: &str,
    reason: &str,
    resume: Option<&str>,
    final_edges: Option<&str>,
) -> String {
    let mut out = format!(
        "{{\"id\":{id},\"ok\":0,\"error\":\"{error}\",\"reason\":\"{}\"",
        sanitize(reason)
    );
    if let Some(edges) = final_edges {
        out.push_str(",\"final_edges\":");
        out.push_str(edges);
    }
    if let Some(token) = resume {
        out.push_str(",\"resume\":");
        out.push_str(token);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    #[test]
    fn check_request_round_trips() {
        let g = generators::path(5);
        let line = format!(
            "{{\"id\":7,\"op\":\"check\",\"tenant\":\"acme\",\"concept\":\"bne\",\
             \"alpha\":\"3/2\",\"n\":5,\"edges\":{}}}",
            render_edges(&g)
        );
        let Request::Check {
            id,
            tenant,
            concept,
            alpha,
            cost_model,
            graph,
            resume,
            deadline_ms,
            stream,
        } = parse_request(&line).unwrap()
        else {
            panic!("wrong op")
        };
        assert_eq!(id, 7);
        assert_eq!(tenant, "acme");
        assert_eq!(concept, Concept::Bne);
        assert_eq!(alpha, "3/2".parse().unwrap());
        assert_eq!(cost_model, CostModelSpec::SumDistances);
        assert_eq!(graph, g);
        assert!(resume.is_none());
        assert!(deadline_ms.is_none());
        assert!(!stream);
    }

    #[test]
    fn stream_flag_and_grant_weight_parse() {
        let line = "{\"id\":4,\"op\":\"trajectory\",\"alpha\":\"2\",\"n\":3,\
                    \"edges\":[1,4294967298],\"stream\":1}";
        let Request::Trajectory { stream, .. } = parse_request(line).unwrap() else {
            panic!("wrong op")
        };
        assert!(stream);
        let Request::Grant { evals, weight, .. } =
            parse_request("{\"id\":5,\"op\":\"grant\",\"tenant\":\"a\",\"weight\":3}").unwrap()
        else {
            panic!("wrong op")
        };
        assert_eq!(evals, None);
        assert_eq!(weight, Some(3));
        let Request::Grant { evals, weight, .. } =
            parse_request("{\"id\":5,\"op\":\"grant\",\"tenant\":\"a\",\"evals\":10,\"weight\":2}")
                .unwrap()
        else {
            panic!("wrong op")
        };
        assert_eq!(evals, Some(10));
        assert_eq!(weight, Some(2));
    }

    #[test]
    fn hostile_tenant_names_cannot_break_stats_rows() {
        // Registered through an embedder (the wire rejects these at
        // parse time), a hostile name must not yield an unparseable or
        // field-spoofing row.
        let row = TenantRow {
            name: "evil\",\"granted\":999999,\"x\":\"".into(),
            granted: 7,
            used: 2,
            weight: 1,
            queued: 0,
            in_flight: 0,
            waited_ms: 0,
        };
        let json = render_tenant_row(&row);
        assert_eq!(jsonio::u64_field(&json, "granted"), Some(7), "{json}");
        assert_eq!(jsonio::u64_field(&json, "used"), Some(2));
        assert_eq!(json.matches('{').count(), 1, "one object only: {json}");
        assert_eq!(json.matches('"').count() % 2, 0, "quotes must balance");
    }

    #[test]
    fn progress_frames_extract_checkpoint_counters() {
        let token = "{\"v\":1,\"instance\":9,\"round\":3,\"agent\":2,\"moved\":1,\
                     \"moves\":5,\"evals\":480,\"seen\":[],\
                     \"scan\":{\"v\":1,\"agent\":2,\"instance\":9,\"pos\":7,\"evals\":12,\"best\":0}}";
        let frame = progress_frame(11, "trajectory", 4, token);
        assert_eq!(jsonio::u64_field(&frame, "id"), Some(11));
        assert_eq!(jsonio::u64_field(&frame, "progress"), Some(1));
        assert_eq!(jsonio::u64_field(&frame, "slices"), Some(4));
        assert_eq!(
            jsonio::u64_field(&frame, "evals"),
            Some(480),
            "the checkpoint's own cumulative evals, not the nested scan's: {frame}"
        );
        assert_eq!(jsonio::u64_field(&frame, "round"), Some(3));
        assert_eq!(jsonio::u64_field(&frame, "moves"), Some(5));
        assert_eq!(jsonio::str_field(&frame, "op"), Some("trajectory"));
    }

    #[test]
    fn cost_model_field_parses_and_defaults() {
        let line = "{\"id\":2,\"op\":\"check\",\"concept\":\"bne\",\"alpha\":\"2\",\
                    \"cost_model\":\"generalized:cap2\",\"n\":3,\"edges\":[1,4294967298]}";
        let Request::Check { cost_model, .. } = parse_request(line).unwrap() else {
            panic!("wrong op")
        };
        assert_eq!(cost_model.token(), "generalized:cap2");
        let err = parse_request(
            "{\"id\":2,\"op\":\"check\",\"concept\":\"bne\",\"alpha\":\"2\",\
             \"cost_model\":\"bogus\",\"n\":3,\"edges\":[1]}",
        )
        .unwrap_err();
        assert!(err.reason.contains("cost_model"), "{:?}", err.reason);
    }

    #[test]
    fn resume_object_is_split_off_before_field_extraction() {
        // The nested token deliberately carries a *different* "concept"
        // and "evals" — request parsing must never read into it, even
        // with the resume object in front of the request's own fields.
        let line = "{\"id\":1,\"op\":\"check\",\
                    \"resume\":{\"v\":1,\"concept\":\"bse\",\"instance\":9,\
                    \"unit\":2,\"pos\":4,\"evals\":55},\
                    \"concept\":\"bne\",\"alpha\":\"2\",\"n\":3,\"edges\":[1,4294967298]}";
        let Request::Check {
            concept, resume, ..
        } = parse_request(line).unwrap()
        else {
            panic!("wrong op")
        };
        assert_eq!(concept, Concept::Bne);
        let token = resume.unwrap();
        assert_eq!(jsonio::u64_field(&token, "evals"), Some(55));
        assert_eq!(jsonio::str_field(&token, "concept"), Some("bse"));
    }

    #[test]
    fn malformed_requests_name_their_cause() {
        for (line, needle) in [
            ("{\"id\":3}", "op"),
            ("{\"id\":3,\"op\":\"frobnicate\"}", "unknown op"),
            (
                "{\"id\":3,\"op\":\"check\",\"alpha\":\"2\",\"n\":4}",
                "concept",
            ),
            (
                "{\"id\":3,\"op\":\"check\",\"concept\":\"bne\",\"n\":4}",
                "alpha",
            ),
            (
                "{\"id\":3,\"op\":\"check\",\"concept\":\"bne\",\"alpha\":\"2\"}",
                "\"n\"",
            ),
            (
                "{\"id\":3,\"op\":\"check\",\"concept\":\"bne\",\"alpha\":\"2\",\
                 \"n\":4,\"edges\":[38654705664]}",
                "edges",
            ),
            (
                "{\"id\":3,\"op\":\"grant\",\"tenant\":\"a{b\",\"evals\":5}",
                "tenant",
            ),
            ("{\"id\":3,\"op\":\"grant\",\"tenant\":\"ok\"}", "evals"),
            (
                "{\"id\":3,\"op\":\"check\",\"concept\":\"bne\",\"alpha\":\"2\",\
                 \"n\":9999999}",
                "limit",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.id, 3);
            assert!(
                err.reason.contains(needle),
                "reason {:?} must mention {needle:?}",
                err.reason
            );
        }
    }

    #[test]
    fn packed_edges_round_trip() {
        let g = generators::random_connected(9, 0.4, &mut bncg_graph::test_rng(5));
        let json = format!("{{\"n\":9,\"edges\":{}}}", render_edges(&g));
        assert_eq!(parse_graph(&json).unwrap(), g);
    }

    #[test]
    fn sanitize_strips_structure() {
        let dirty = "bad \"alpha\": {x\\y} [z]\n";
        let clean = sanitize(dirty);
        assert!(!clean.contains('"') && !clean.contains('\\'));
        assert!(!clean.contains('{') && !clean.contains('['));
        let resp = error_response(4, "bad_request", dirty, None, None);
        assert_eq!(jsonio::u64_field(&resp, "id"), Some(4));
        assert_eq!(jsonio::u64_field(&resp, "ok"), Some(0));
        assert_eq!(jsonio::str_field(&resp, "error"), Some("bad_request"));
    }

    #[test]
    fn moves_render_as_flat_objects() {
        let mv = Move::Neighborhood {
            center: 3,
            remove: vec![1],
            add: vec![5, 7],
        };
        let json = render_move(&mv);
        assert_eq!(jsonio::str_field(&json, "kind"), Some("neighborhood"));
        assert_eq!(jsonio::u64_field(&json, "center"), Some(3));
        assert_eq!(jsonio::u64_list_field(&json, "add"), Some(vec![5, 7]));
        let mv = Move::Coalition {
            members: vec![0, 2],
            remove_edges: vec![(0, 1)],
            add_edges: vec![(0, 2)],
        };
        let json = render_move(&mv);
        assert_eq!(
            jsonio::u64_list_field(&json, "remove_edges"),
            Some(vec![pack_edge(0, 1)])
        );
    }
}
