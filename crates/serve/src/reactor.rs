//! A minimal `poll(2)` readiness substrate: enough of an event loop
//! toolkit to multiplex thousands of non-blocking sockets on one
//! thread, with no dependencies beyond `std`.
//!
//! The daemon used to spend a thread per connection; idle connections
//! cost stacks, and a burst of clients cost a burst of threads. The
//! server's front end now parks **one** thread in [`wait`] over every
//! connection's fd, so an idle connection costs its buffers and a
//! `pollfd` entry — bytes, not threads.
//!
//! `std` exposes no readiness API, so this module declares the one
//! C function it needs. `poll(2)` is in POSIX and `std` already links
//! the platform's libc on every unix target; the raw declaration keeps
//! the crate offline-safe (no `libc`/`mio` dependency). The cost is
//! the classic O(n) fd scan per wakeup — for the daemon's scale
//! (hundreds to a few thousand sockets, validated by the
//! idle-connection CI kernel) that scan is microseconds, far below one
//! solver slice.
//!
//! Cross-thread wakeups use the self-pipe idiom ([`waker`]): scheduler
//! workers finish responses on their own threads, push the bytes into a
//! connection outbox, and write one byte into a [`UnixStream`] pair to
//! pop the event loop out of [`wait`].
//!
//! [`UnixStream`]: std::os::unix::net::UnixStream

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::raw::{c_int, c_ulong};
use std::os::unix::net::UnixStream;

/// `POLLIN`: readable (or a peer hangup, which reads as EOF).
pub const POLLIN: i16 = 0x001;
/// `POLLOUT`: writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// `POLLERR`: error condition (always polled, never requested).
pub const POLLERR: i16 = 0x008;
/// `POLLHUP`: peer hung up (always polled, never requested).
pub const POLLHUP: i16 = 0x010;
/// `POLLNVAL`: fd not open (always polled, never requested).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the poll set — ABI-identical to `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` | `POLLOUT`).
    pub events: i16,
    /// Returned events, filled by [`wait`].
    pub revents: i16,
}

impl PollFd {
    /// A poll entry asking for `events` on `fd`.
    #[must_use]
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the fd warrants a read attempt: readable data, a hangup
    /// (which reads as EOF), or an error (which reads as `Err`) — all
    /// three resolve through the same non-blocking `read` call.
    #[must_use]
    pub fn wants_read(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    /// Whether a buffered write can make progress now.
    #[must_use]
    pub fn wants_write(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Blocks until at least one entry has a ready event, or `timeout_ms`
/// elapses (`-1` waits forever). Returns the ready count; `revents` is
/// cleared and refilled on every entry. `EINTR` reports as `Ok(0)` — a
/// spurious-wakeup-tolerant loop is the only sane caller shape anyway.
///
/// # Errors
///
/// Any `poll(2)` failure other than `EINTR` (e.g. `ENOMEM`).
pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    for fd in fds.iter_mut() {
        fd.revents = 0;
    }
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(usize::try_from(rc).unwrap_or(0))
}

/// The writing half of a self-pipe: any thread holding one can pop the
/// event loop out of [`wait`].
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Queues a wakeup. Never blocks: the pipe is non-blocking, and a
    /// full pipe means wakeups are already pending — losing the extra
    /// byte is harmless because the receiver drains level-triggered.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// The reading half of a self-pipe: polled by the event loop alongside
/// the sockets.
#[derive(Debug)]
pub struct WakeReceiver {
    rx: UnixStream,
}

impl WakeReceiver {
    /// The fd to include in the poll set (ask for [`POLLIN`]).
    #[must_use]
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Swallows every pending wakeup byte so the next [`wait`] blocks.
    pub fn drain(&self) {
        let mut buf = [0u8; 256];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// A connected waker pair (the self-pipe), both ends non-blocking.
///
/// # Errors
///
/// Propagates socketpair/fcntl failures.
pub fn waker() -> io::Result<(Waker, WakeReceiver)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_reports_readability_and_timeouts() {
        let (waker, rx) = waker().unwrap();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        // Nothing pending: a zero timeout returns immediately with no
        // ready fds.
        assert_eq!(wait(&mut fds, 0).unwrap(), 0);
        assert!(!fds[0].wants_read());
        waker.wake();
        assert_eq!(wait(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].wants_read());
        // Draining resets the level-triggered readiness.
        rx.drain();
        assert_eq!(wait(&mut fds, 0).unwrap(), 0);
    }

    #[test]
    fn waker_tolerates_a_full_pipe() {
        let (waker, rx) = waker().unwrap();
        // Flood far past any socketpair buffer; wake() must never block
        // or panic.
        for _ in 0..300_000 {
            waker.wake();
        }
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        assert_eq!(wait(&mut fds, 0).unwrap(), 1);
        rx.drain();
        assert_eq!(wait(&mut fds, 0).unwrap(), 0);
    }
}
