//! The time-slicing scheduler: a fixed worker pool interleaving
//! thousands of resident queries through bounded evaluation slices,
//! dispatched across tenants by **weighted deficit round-robin**.
//!
//! Every query runs as a sequence of **slices** — each slice is one
//! budgeted call into the solver surface ([`Solver::check_sliced`],
//! [`best_response_with_policy`], the dynamics runners) capped at the
//! scheduler's per-slice evaluation quantum. A slice that completes its
//! query responds; a slice stopped by the quantum requeues the job at
//! the back of **its tenant's own queue** with the serialized frontier
//! it produced. Between slices nothing is held but the job struct
//! itself: the solver's resume contract guarantees a sliced chain
//! reaches the **identical** verdict, witness, and cumulative
//! evaluation count an uninterrupted run produces.
//!
//! ## Dispatch: weighted deficit round-robin
//!
//! Jobs queue per tenant, and a single active list rotates over the
//! tenants that have queued work. When a tenant reaches the front with
//! an empty deficit, the deficit refills to the tenant's **weight**
//! (default 1, set via the extended `grant` op); every dispatched slice
//! costs one deficit, and the tenant keeps the front only while deficit
//! remains. Slices are unit-cost, so a weight-w tenant receives w
//! consecutive slices per rotation. The fairness bound follows
//! directly: a tenant with 10,000 queued checks cannot delay another
//! tenant's single query by more than one full rotation — the sum of
//! the *other* active tenants' weights, independent of queue depth (the
//! `sched_fairness` CI kernel pins this down).
//!
//! Fairness in *volume* stays budget-driven: before and after every
//! slice the job's [`Tenant`] pool is consulted, and a drained (or
//! expired) pool sheds the job with zero further work — carrying the
//! resume token, so the shed work is suspended, not lost. An operator
//! `grant` plus a resubmission with the token continues exactly where
//! the shed happened. Weight shapes *latency* under contention; the
//! pool caps *total computation*.
//!
//! Grants and weights are durable when the scheduler is given a journal
//! path ([`crate::journal`]): each control action appends one line to
//! `grants.jsonl` before it is applied, and a restart replays the
//! journal, so provisioned tenants survive the daemon.
//!
//! [`Solver::check_sliced`]: bncg_core::Solver::check_sliced
//! [`best_response_with_policy`]: bncg_core::best_response_with_policy

use crate::journal::{GrantEvent, GrantJournal};
use crate::protocol::{
    error_response, progress_frame, render_edges, render_move, sanitize, TenantRow,
};
use crate::tenant::{Tenant, TenantRegistry, TenantStats};
use bncg_core::solver::{ExecPolicy, Solver, StabilityQuery, Verdict};
use bncg_core::{
    best_response_resume, best_response_with_policy, Alpha, BestResponseFrontier,
    BestResponseVerdict, Concept, CostModelSpec, Frontier, GameState,
};
use bncg_dynamics::round_robin::{self, Checkpoint};
use bncg_dynamics::{self as dynamics, DynamicsCheckpoint, SelectionRule};
use bncg_graph::Graph;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads draining the run queues. Each worker runs its
    /// slices single-threaded — parallelism comes from concurrent
    /// queries, not from sharding one query's scan.
    pub workers: usize,
    /// Candidate evaluations per slice. Smaller slices interleave more
    /// fairly; larger slices amortize the per-slice state rebuild.
    pub slice: u64,
    /// Evaluations granted to tenants that first appear in a query
    /// rather than in an explicit `grant`. The default is effectively
    /// unmetered; multi-tenant operators set this low and fund tenants
    /// explicitly.
    pub default_grant: u64,
    /// Where to journal grants and weights (a file path, or a directory
    /// under which `grants.jsonl` is used). `None` disables
    /// persistence: grants live and die with the process.
    pub journal: Option<PathBuf>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 2,
            slice: 2048,
            default_grant: u64::MAX,
            journal: None,
        }
    }
}

/// The game-theoretic payload of a query, decoupled from the wire
/// protocol so embedders (tests, benchmarks) can submit work directly.
#[derive(Debug, Clone)]
pub enum Work {
    /// A stability check (`op:"check"`).
    Check {
        /// The queried solution concept.
        concept: Concept,
        /// The instance graph.
        graph: Graph,
        /// Edge price α.
        alpha: Alpha,
        /// The cost model the check prices agents under.
        cost_model: CostModelSpec,
    },
    /// A best-response scan (`op:"best_response"`).
    BestResponse {
        /// The optimizing agent.
        agent: u32,
        /// The instance graph.
        graph: Graph,
        /// Edge price α.
        alpha: Alpha,
        /// The cost model the scan prices the agent under.
        cost_model: CostModelSpec,
    },
    /// Round-robin best-response dynamics (`op:"trajectory"`).
    Trajectory {
        /// The current graph (advances across requeued slices).
        graph: Graph,
        /// Edge price α.
        alpha: Alpha,
        /// Round cap.
        rounds: usize,
        /// The cost model every activation prices under.
        cost_model: CostModelSpec,
    },
    /// Improving-move dynamics under a concept (`op:"dynamics"`).
    Dynamics {
        /// The concept whose violations drive the dynamics.
        concept: Concept,
        /// The current graph (advances across requeued slices).
        graph: Graph,
        /// Edge price α.
        alpha: Alpha,
        /// Step cap.
        steps: usize,
        /// The cost model the violation scans price under.
        cost_model: CostModelSpec,
    },
}

impl Work {
    /// The graph a shed response reports as `final_edges` — only the
    /// dynamics ops, whose graph advances with the trajectory (a check's
    /// graph is the client's own input, not worth echoing).
    fn evolving_graph(&self) -> Option<&Graph> {
        match self {
            Work::Trajectory { graph, .. } | Work::Dynamics { graph, .. } => Some(graph),
            Work::Check { .. } | Work::BestResponse { .. } => None,
        }
    }

    /// The wire op name, echoed in progress frames.
    fn op(&self) -> &'static str {
        match self {
            Work::Check { .. } => "check",
            Work::BestResponse { .. } => "best_response",
            Work::Trajectory { .. } => "trajectory",
            Work::Dynamics { .. } => "dynamics",
        }
    }
}

/// One query as submitted: payload plus scheduling metadata.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Client correlation id, echoed in the response.
    pub id: u64,
    /// Tenant whose pool meters the work.
    pub tenant: String,
    /// The payload.
    pub work: Work,
    /// A resume token from an earlier shed response, verbatim.
    pub resume: Option<String>,
    /// Wall-clock allowance from submission, in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// A resident query: spec plus the scheduler's bookkeeping. The
/// `respond` callback fires exactly once, with the final response line;
/// `progress` (streaming submissions only) fires once per requeued
/// slice, always before `respond`.
struct Job {
    id: u64,
    tenant: Arc<Tenant>,
    work: Work,
    resume: Option<String>,
    slices: u64,
    deadline: Option<Instant>,
    enqueued: Instant,
    progress: Option<Box<dyn Fn(String) + Send>>,
    respond: Box<dyn FnOnce(String) + Send>,
}

/// One tenant's slot in the run state: its queue plus the deficit
/// round-robin and accounting counters. Slots persist after the queue
/// drains — `waited_ms` is cumulative for the `stats` op.
#[derive(Default)]
struct TenantQueue {
    jobs: VecDeque<Job>,
    /// Slices this tenant may still dispatch before rotating to the
    /// back of the active list. Refilled to the tenant's weight when it
    /// reaches the front empty; reset when the queue drains so deficit
    /// never accumulates across idle periods.
    deficit: u64,
    /// Jobs currently mid-slice on a worker. Incremented under the same
    /// lock as the pop, so every resident job is counted in exactly one
    /// of `jobs`/`in_flight` at all times.
    in_flight: u64,
    /// Cumulative microseconds jobs of this tenant spent queued, summed
    /// at each dispatch.
    waited_us: u64,
}

impl TenantQueue {
    fn depth(&self) -> u64 {
        self.jobs.len() as u64 + self.in_flight
    }
}

/// Everything the dispatch decision reads, under one lock: the
/// per-tenant queues, the rotation order, and the stop flag (checked
/// under this same lock by `submit`, closing the submit/stop race).
struct RunState {
    queues: HashMap<String, TenantQueue>,
    /// Tenant names with non-empty `jobs`, in dispatch order. Invariant:
    /// a name is listed exactly once iff its queue holds jobs.
    active: VecDeque<String>,
    stopping: bool,
}

struct Shared {
    state: Mutex<RunState>,
    available: Condvar,
    /// Mirror of `RunState::stopping` for lock-free mid-slice checks.
    stop: AtomicBool,
    slice: u64,
    tenants: TenantRegistry,
    journal: Option<Mutex<GrantJournal>>,
}

/// The worker pool plus per-tenant run queues. See the module docs for
/// the scheduling model.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Pops the next job per weighted deficit round-robin. Caller holds the
/// state lock; wait and in-flight accounting happen here, under it.
fn pop_next(state: &mut RunState) -> Option<Job> {
    let name = state.active.pop_front()?;
    let q = state
        .queues
        .get_mut(&name)
        .expect("active tenants have queues");
    if q.deficit == 0 {
        q.deficit = q.jobs.front().map_or(1, |j| j.tenant.weight()).max(1);
    }
    q.deficit -= 1;
    let job = q.jobs.pop_front().expect("active tenants have queued jobs");
    q.in_flight += 1;
    q.waited_us += u64::try_from(job.enqueued.elapsed().as_micros()).unwrap_or(u64::MAX);
    if q.jobs.is_empty() {
        q.deficit = 0;
    } else if q.deficit > 0 {
        state.active.push_front(name);
    } else {
        state.active.push_back(name);
    }
    Some(job)
}

/// Enqueues at the back of the job's tenant queue. Caller holds the
/// state lock.
fn enqueue(state: &mut RunState, job: Job) {
    let name = job.tenant.name().to_string();
    let q = state.queues.entry(name.clone()).or_default();
    if q.jobs.is_empty() {
        state.active.push_back(name);
    }
    q.jobs.push_back(job);
}

impl Scheduler {
    /// Starts the worker pool; when the config names a journal, opens
    /// it and replays every recorded grant and weight first.
    ///
    /// # Errors
    ///
    /// Propagates journal open/replay I/O failures. A journal-less
    /// config cannot fail.
    pub fn start(cfg: SchedulerConfig) -> io::Result<Self> {
        let tenants = TenantRegistry::new(cfg.default_grant);
        let journal = match &cfg.journal {
            None => None,
            Some(path) => {
                let (journal, events) = GrantJournal::open(path)?;
                for event in events {
                    match event {
                        GrantEvent::Grant { tenant, evals } => {
                            tenants.grant(&tenant, evals);
                        }
                        GrantEvent::Weight { tenant, weight } => {
                            tenants.set_weight(&tenant, weight);
                        }
                    }
                }
                Some(Mutex::new(journal))
            }
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(RunState {
                queues: HashMap::new(),
                active: VecDeque::new(),
                stopping: false,
            }),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            slice: cfg.slice.max(1),
            tenants,
            journal,
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Scheduler {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// Enqueues a query; `respond` fires exactly once with the response
    /// line (immediately, when the scheduler is already stopping).
    pub fn submit(&self, spec: QuerySpec, respond: Box<dyn FnOnce(String) + Send>) {
        self.submit_inner(spec, None, respond);
    }

    /// [`submit`](Scheduler::submit), plus a `progress` callback fired
    /// once per requeued slice — each call carries one streaming
    /// `progress` frame, and every frame precedes the final line.
    pub fn submit_with_progress(
        &self,
        spec: QuerySpec,
        progress: Box<dyn Fn(String) + Send>,
        respond: Box<dyn FnOnce(String) + Send>,
    ) {
        self.submit_inner(spec, Some(progress), respond);
    }

    fn submit_inner(
        &self,
        spec: QuerySpec,
        progress: Option<Box<dyn Fn(String) + Send>>,
        respond: Box<dyn FnOnce(String) + Send>,
    ) {
        let job = Job {
            id: spec.id,
            tenant: self.shared.tenants.get_or_create(&spec.tenant),
            work: spec.work,
            resume: spec.resume,
            slices: 0,
            deadline: spec
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            enqueued: Instant::now(),
            progress,
            respond,
        };
        // The stop check happens under the same lock as the enqueue:
        // either the job lands before `stop()` drains (and is shed by
        // the drain), or it observes `stopping` and answers here. No
        // window where a job slips into a queue no worker will visit.
        let rejected = {
            let mut state = self.shared.state.lock().expect("no poisoning");
            if state.stopping {
                Some(job)
            } else {
                enqueue(&mut state, job);
                None
            }
        };
        match rejected {
            None => self.shared.available.notify_one(),
            Some(job) => (job.respond)(error_response(
                job.id,
                "shutdown",
                "daemon is shutting down",
                job.resume.as_deref(),
                None,
            )),
        }
    }

    /// [`submit`](Scheduler::submit) and block for the response line —
    /// the convenience path for tests and benchmarks.
    pub fn submit_blocking(&self, spec: QuerySpec) -> String {
        let (tx, rx) = mpsc::channel();
        self.submit(
            spec,
            Box::new(move |line| {
                let _ = tx.send(line);
            }),
        );
        rx.recv().expect("scheduler dropped the response")
    }

    /// Funds a tenant (see [`TenantRegistry::grant`]), journaling the
    /// event first when persistence is on. Returns its new total grant.
    pub fn grant(&self, tenant: &str, evals: u64) -> u64 {
        if let Some(journal) = &self.shared.journal {
            let _ = journal
                .lock()
                .expect("no poisoning")
                .record_grant(tenant, evals);
        }
        self.shared.tenants.grant(tenant, evals)
    }

    /// Sets a tenant's deficit round-robin weight (clamped to ≥ 1),
    /// journaling the stored value when persistence is on. Returns the
    /// weight as stored.
    pub fn set_weight(&self, tenant: &str, weight: u64) -> u64 {
        let stored = self.shared.tenants.set_weight(tenant, weight);
        if let Some(journal) = &self.shared.journal {
            let _ = journal
                .lock()
                .expect("no poisoning")
                .record_weight(tenant, stored);
        }
        stored
    }

    /// The tenant registry, for embedders reading pool state directly.
    #[must_use]
    pub fn registry(&self) -> &TenantRegistry {
        &self.shared.tenants
    }

    /// Queries resident right now: queued plus mid-slice, read in one
    /// pass under the state lock — a dispatched-but-uncounted window
    /// does not exist.
    #[must_use]
    pub fn resident(&self) -> u64 {
        let state = self.shared.state.lock().expect("no poisoning");
        state.queues.values().map(TenantQueue::depth).sum()
    }

    /// Per-tenant accounting rows (pool side only; see
    /// [`Scheduler::tenant_rows`] for the merged `stats` view).
    #[must_use]
    pub fn tenants(&self) -> Vec<TenantStats> {
        self.shared.tenants.snapshot()
    }

    /// The `stats` op's merged per-tenant rows: pool accounting plus
    /// queue depth, in-flight count, weight, and cumulative wait — one
    /// pass under the state lock, sorted by name.
    #[must_use]
    pub fn tenant_rows(&self) -> Vec<TenantRow> {
        let stats = self.shared.tenants.snapshot();
        let state = self.shared.state.lock().expect("no poisoning");
        stats
            .into_iter()
            .map(|t| {
                let q = state.queues.get(&t.name);
                TenantRow {
                    queued: q.map_or(0, |q| q.jobs.len() as u64),
                    in_flight: q.map_or(0, |q| q.in_flight),
                    waited_ms: q.map_or(0, |q| q.waited_us / 1000),
                    name: t.name,
                    granted: t.granted,
                    used: t.used,
                    weight: t.weight,
                }
            })
            .collect()
    }

    /// Resident jobs per tenant name — queued **plus mid-slice**, so a
    /// busy daemon never reports idle. One pass under the state lock.
    #[must_use]
    pub fn queue_depths(&self) -> HashMap<String, u64> {
        let state = self.shared.state.lock().expect("no poisoning");
        state
            .queues
            .iter()
            .filter(|(_, q)| q.depth() > 0)
            .map(|(name, q)| (name.clone(), q.depth()))
            .collect()
    }

    /// Stops the pool: queued jobs still get slices, but unfinished work
    /// is shed with its resume token instead of requeued, so the drain
    /// is bounded by one slice per resident query. Jobs that race into
    /// the queue as the workers exit are shed here, after the join —
    /// every accepted `respond` callback still fires. Idempotent;
    /// blocks until every worker has exited.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.state.lock().expect("no poisoning").stopping = true;
        self.shared.available.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("no poisoning")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        let leftovers: Vec<Job> = {
            let mut state = self.shared.state.lock().expect("no poisoning");
            state.active.clear();
            state
                .queues
                .values_mut()
                .flat_map(|q| q.jobs.drain(..))
                .collect()
        };
        for job in leftovers {
            let line = shed_line(&job, "shutdown", "daemon is shutting down");
            (job.respond)(line);
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("no poisoning");
            loop {
                if let Some(job) = pop_next(&mut state) {
                    break Some(job);
                }
                if state.stopping {
                    break None;
                }
                state = shared.available.wait(state).expect("no poisoning");
            }
        };
        let Some(mut job) = job else { return };
        job.slices += 1;
        match drive(shared, &mut job) {
            SliceOutcome::Done(line) => {
                // Respond before decrementing in-flight: the job stays
                // visible in `resident()` until its answer is delivered.
                let tenant = Arc::clone(&job.tenant);
                (job.respond)(line);
                let mut state = shared.state.lock().expect("no poisoning");
                let q = state.queues.entry(tenant.name().to_string()).or_default();
                q.in_flight = q.in_flight.saturating_sub(1);
            }
            SliceOutcome::Requeue => {
                job.enqueued = Instant::now();
                let mut state = shared.state.lock().expect("no poisoning");
                {
                    let q = state
                        .queues
                        .entry(job.tenant.name().to_string())
                        .or_default();
                    q.in_flight = q.in_flight.saturating_sub(1);
                }
                enqueue(&mut state, job);
                drop(state);
                shared.available.notify_one();
            }
        }
    }
}

/// What one slice left behind: a response line (the query is over) or a
/// requeue order (the job's `resume` token has been advanced in place).
enum SliceOutcome {
    Done(String),
    Requeue,
}

/// The uniform suspension line: `error` is `shed`/`deadline`/
/// `shutdown`, the job's current resume token rides along, and the
/// dynamics ops echo their advanced graph so the client can resume
/// against it. Rendered fresh at each call site — after a slice the
/// trajectory graph has moved.
fn shed_line(job: &Job, error: &str, reason: &str) -> String {
    let final_edges = job.work.evolving_graph().map(render_edges);
    error_response(
        job.id,
        error,
        reason,
        job.resume.as_deref(),
        final_edges.as_deref(),
    )
}

fn suspend(job: &Job, error: &str, reason: &str) -> SliceOutcome {
    SliceOutcome::Done(shed_line(job, error, reason))
}

/// Admission control around one slice of work.
fn drive(shared: &Shared, job: &mut Job) -> SliceOutcome {
    if job.deadline.is_some_and(|d| Instant::now() >= d) {
        return suspend(job, "deadline", "query deadline passed");
    }
    if !job.tenant.pool().admits() {
        return suspend(job, "shed", "tenant budget pool is drained");
    }
    let left = job
        .deadline
        .map(|d| d.saturating_duration_since(Instant::now()));
    let mut policy = ExecPolicy::default().with_threads(1);
    policy.deadline = left;
    match step(job, &policy, shared.slice) {
        Ok(Stepped::Finished(line)) => SliceOutcome::Done(line),
        Ok(Stepped::Suspended(token)) => {
            job.resume = Some(token);
            if shared.stop.load(Ordering::Acquire) {
                return suspend(job, "shutdown", "daemon is shutting down");
            }
            if job.deadline.is_some_and(|d| Instant::now() >= d) {
                return suspend(job, "deadline", "query deadline passed");
            }
            if !job.tenant.pool().admits() {
                return suspend(job, "shed", "tenant budget pool is drained");
            }
            if let Some(emit) = &job.progress {
                let token = job.resume.as_deref().expect("just set");
                emit(progress_frame(job.id, job.work.op(), job.slices, token));
            }
            SliceOutcome::Requeue
        }
        Err(reason) => {
            let error = if job.resume.is_some() {
                "bad_resume"
            } else {
                "bad_request"
            };
            SliceOutcome::Done(error_response(
                job.id,
                error,
                &sanitize(&reason),
                None,
                None,
            ))
        }
    }
}

/// A slice's work result before scheduling policy is applied.
enum Stepped {
    /// The query completed — here is the `ok:1` response line.
    Finished(String),
    /// The slice quantum stopped the work — here is the fresh resume
    /// token (the dynamics arms have also advanced their job's graph).
    Suspended(String),
}

/// One budgeted slice of actual work. `Err` carries a human-readable
/// reason for `bad_request`/`bad_resume` responses.
fn step(job: &mut Job, policy: &ExecPolicy, slice: u64) -> Result<Stepped, String> {
    let id = job.id;
    let slices = job.slices;
    let tenant = Arc::clone(&job.tenant);
    let pool = tenant.pool();
    let resume = job.resume.clone();
    match &mut job.work {
        Work::Check {
            concept,
            graph,
            alpha,
            cost_model,
        } => {
            let mut query =
                StabilityQuery::new(*concept, graph, *alpha).with_cost_model(*cost_model);
            if let Some(token) = &resume {
                let frontier: Frontier = token.parse().map_err(|e| format!("{e}"))?;
                query = query.resume(frontier);
            }
            let verdict = Solver::new(policy.clone())
                .check_sliced(&query, pool, slice)
                .map_err(|e| format!("{e}"))?;
            match verdict {
                Verdict::Stable { evals, .. } => {
                    if evals == 0 {
                        // Polynomial concepts complete unmetered; bill a
                        // flat rate so drained tenants cannot freeride.
                        pool.charge(1);
                    }
                    Ok(Stepped::Finished(format!(
                        "{{\"id\":{id},\"ok\":1,\"op\":\"check\",\"verdict\":\"stable\",\
                         \"evals\":{evals},\"slices\":{slices}}}"
                    )))
                }
                Verdict::Unstable { witness, evals, .. } => {
                    if evals == 0 {
                        pool.charge(1);
                    }
                    Ok(Stepped::Finished(format!(
                        "{{\"id\":{id},\"ok\":1,\"op\":\"check\",\"verdict\":\"unstable\",\
                         \"witness\":{},\"evals\":{evals},\"slices\":{slices}}}",
                        render_move(&witness)
                    )))
                }
                Verdict::Exhausted { frontier, .. } => Ok(Stepped::Suspended(frontier.to_json())),
            }
        }
        Work::BestResponse {
            agent,
            graph,
            alpha,
            cost_model,
        } => {
            let mut budgeted = policy.clone();
            budgeted.eval_budget = Some(slice.min(pool.remaining().max(1)));
            let state = GameState::with_cost_model(graph.clone(), *alpha, *cost_model);
            let (verdict, prior) = match &resume {
                Some(token) => {
                    let frontier: BestResponseFrontier =
                        token.parse().map_err(|e| format!("{e}"))?;
                    let prior = frontier.evals();
                    (
                        best_response_resume(&state, &budgeted, &frontier)
                            .map_err(|e| format!("{e}"))?,
                        prior,
                    )
                }
                None => (
                    best_response_with_policy(&state, *agent, &budgeted)
                        .map_err(|e| format!("{e}"))?,
                    0,
                ),
            };
            // No batch-pool plumbing on the optimization surface — bill
            // the slice's cumulative-eval delta by hand (min 1, so even
            // no-op slices drain a finite pool and the shed fires).
            pool.charge(verdict.evals().saturating_sub(prior).max(1));
            match verdict {
                BestResponseVerdict::Optimal {
                    response, evals, ..
                } => {
                    let mv = match &response.best {
                        Some(mv) => format!(",\"move\":{}", render_move(mv)),
                        None => String::new(),
                    };
                    Ok(Stepped::Finished(format!(
                        "{{\"id\":{id},\"ok\":1,\"op\":\"best_response\",\"improving\":{}{mv},\
                         \"evals\":{evals},\"slices\":{slices}}}",
                        u8::from(response.best.is_some())
                    )))
                }
                BestResponseVerdict::ImprovedSoFar { frontier, .. }
                | BestResponseVerdict::Exhausted { frontier, .. } => {
                    Ok(Stepped::Suspended(frontier.to_json()))
                }
            }
        }
        Work::Trajectory {
            graph,
            alpha,
            rounds,
            cost_model,
        } => {
            let mut budgeted = policy.clone();
            budgeted.eval_budget = Some(slice.min(pool.remaining().max(1)));
            let (out, prior) = match &resume {
                Some(token) => {
                    let ckpt: Checkpoint = token.parse().map_err(|e| format!("{e}"))?;
                    let prior = ckpt.evals();
                    (
                        round_robin::resume_under(
                            graph,
                            *alpha,
                            *cost_model,
                            *rounds,
                            &budgeted,
                            &ckpt,
                        )
                        .map_err(|e| format!("{e}"))?,
                        prior,
                    )
                }
                None => (
                    round_robin::run_with_policy_under(
                        graph,
                        *alpha,
                        *cost_model,
                        *rounds,
                        &budgeted,
                    )
                    .map_err(|e| format!("{e}"))?,
                    0,
                ),
            };
            pool.charge(out.evals.saturating_sub(prior).max(1));
            *graph = out.final_graph.clone();
            match out.checkpoint {
                Some(ckpt) => Ok(Stepped::Suspended(ckpt.to_json())),
                None => Ok(Stepped::Finished(format!(
                    "{{\"id\":{id},\"ok\":1,\"op\":\"trajectory\",\"converged\":{},\
                     \"cycled\":{},\"rounds\":{},\"moves\":{},\"evals\":{},\
                     \"slices\":{slices},\"final_edges\":{}}}",
                    u8::from(out.converged),
                    u8::from(out.cycled),
                    out.rounds,
                    out.moves,
                    out.evals,
                    render_edges(&out.final_graph)
                ))),
            }
        }
        Work::Dynamics {
            concept,
            graph,
            alpha,
            steps,
            cost_model,
        } => {
            let mut budgeted = policy.clone();
            budgeted.eval_budget = Some(slice.min(pool.remaining().max(1)));
            let (traj, prior_evals, prior_steps) = match &resume {
                Some(token) => {
                    let ckpt: DynamicsCheckpoint = token.parse().map_err(|e| format!("{e}"))?;
                    let (pe, ps) = (ckpt.evals(), ckpt.steps());
                    (
                        dynamics::resume_with_policy_under(
                            graph,
                            *alpha,
                            *cost_model,
                            *concept,
                            SelectionRule::First,
                            *steps,
                            &budgeted,
                            &ckpt,
                        )
                        .map_err(|e| format!("{e}"))?,
                        pe,
                        ps,
                    )
                }
                None => (
                    dynamics::run_with_policy_under(
                        graph,
                        *alpha,
                        *cost_model,
                        *concept,
                        SelectionRule::First,
                        *steps,
                        &budgeted,
                    )
                    .map_err(|e| format!("{e}"))?,
                    0,
                    0,
                ),
            };
            pool.charge(traj.evals.saturating_sub(prior_evals).max(1));
            let steps_total = prior_steps + traj.len();
            *graph = traj.final_graph.clone();
            match traj.checkpoint {
                Some(ckpt) => Ok(Stepped::Suspended(ckpt.to_json())),
                None => Ok(Stepped::Finished(format!(
                    "{{\"id\":{id},\"ok\":1,\"op\":\"dynamics\",\"converged\":{},\
                     \"steps\":{steps_total},\"evals\":{},\"slices\":{slices},\
                     \"final_edges\":{}}}",
                    u8::from(traj.converged),
                    traj.evals,
                    render_edges(&traj.final_graph)
                ))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_core::jsonio;
    use bncg_graph::generators;
    use std::sync::atomic::AtomicU64;

    fn spec(id: u64, tenant: &str, work: Work) -> QuerySpec {
        QuerySpec {
            id,
            tenant: tenant.into(),
            work,
            resume: None,
            deadline_ms: None,
        }
    }

    fn check_c40(tenant: &str, id: u64) -> QuerySpec {
        spec(
            id,
            tenant,
            Work::Check {
                concept: Concept::Bne,
                graph: generators::cycle(40),
                alpha: Alpha::integer(370).unwrap(),
                cost_model: CostModelSpec::SumDistances,
            },
        )
    }

    fn start(workers: usize, slice: u64, default_grant: u64) -> Scheduler {
        Scheduler::start(SchedulerConfig {
            workers,
            slice,
            default_grant,
            journal: None,
        })
        .expect("journal-less start cannot fail")
    }

    #[test]
    fn sliced_check_matches_direct_solver_run() {
        let sched = start(1, 64, u64::MAX);
        // C40 at α = 370 is BNE-stable with ~120 genuinely priced
        // candidates (see tests/solver.rs) — enough to straddle slices.
        let g = generators::cycle(40);
        let alpha = Alpha::integer(370).unwrap();
        let line = sched.submit_blocking(spec(
            9,
            "t",
            Work::Check {
                concept: Concept::Bne,
                graph: g.clone(),
                alpha,
                cost_model: CostModelSpec::SumDistances,
            },
        ));
        let direct = Solver::default()
            .check(&StabilityQuery::new(Concept::Bne, &g, alpha))
            .unwrap();
        assert_eq!(jsonio::u64_field(&line, "ok"), Some(1), "{line}");
        let verdict = jsonio::str_field(&line, "verdict").unwrap();
        match direct {
            Verdict::Stable { evals, .. } => {
                assert_eq!(verdict, "stable");
                assert_eq!(jsonio::u64_field(&line, "evals"), Some(evals));
            }
            Verdict::Unstable { evals, .. } => {
                assert_eq!(verdict, "unstable");
                assert_eq!(jsonio::u64_field(&line, "evals"), Some(evals));
            }
            Verdict::Exhausted { .. } => panic!("unbudgeted run cannot exhaust"),
        }
        assert!(
            jsonio::u64_field(&line, "slices").unwrap() > 1,
            "a 64-eval slice must requeue the C40 BNE scan: {line}"
        );
        sched.stop();
    }

    #[test]
    fn drained_tenant_sheds_with_resume_token() {
        let sched = start(1, 32, 40);
        let g = generators::cycle(40);
        let alpha = Alpha::integer(370).unwrap();
        let line = sched.submit_blocking(spec(
            1,
            "poor",
            Work::Check {
                concept: Concept::Bne,
                graph: g.clone(),
                alpha,
                cost_model: CostModelSpec::SumDistances,
            },
        ));
        assert_eq!(jsonio::u64_field(&line, "ok"), Some(0), "{line}");
        assert_eq!(jsonio::str_field(&line, "error"), Some("shed"));
        let token = jsonio::object_field(&line, "resume")
            .expect("shed responses carry the resume token")
            .to_string();
        // Topping the tenant up and resubmitting with the shed token
        // completes the scan with the cumulative eval count intact.
        sched.grant("poor", u64::MAX - 40);
        let line = sched.submit_blocking(QuerySpec {
            id: 2,
            tenant: "poor".into(),
            work: Work::Check {
                concept: Concept::Bne,
                graph: g.clone(),
                alpha,
                cost_model: CostModelSpec::SumDistances,
            },
            resume: Some(token),
            deadline_ms: None,
        });
        assert_eq!(jsonio::u64_field(&line, "ok"), Some(1), "{line}");
        let direct = Solver::default()
            .check(&StabilityQuery::new(Concept::Bne, &g, alpha))
            .unwrap();
        let direct_evals = match direct {
            Verdict::Stable { evals, .. } | Verdict::Unstable { evals, .. } => evals,
            Verdict::Exhausted { .. } => panic!("unbudgeted run cannot exhaust"),
        };
        assert_eq!(
            jsonio::u64_field(&line, "evals"),
            Some(direct_evals),
            "resumed chain must report the uninterrupted cumulative evals"
        );
        sched.stop();
    }

    #[test]
    fn trajectory_advances_its_graph_across_slices() {
        let sched = start(2, 16, u64::MAX);
        let g = generators::path(9);
        let alpha = Alpha::integer(2).unwrap();
        let line = sched.submit_blocking(spec(
            3,
            "t",
            Work::Trajectory {
                graph: g.clone(),
                alpha,
                rounds: 100,
                cost_model: CostModelSpec::SumDistances,
            },
        ));
        assert_eq!(jsonio::u64_field(&line, "ok"), Some(1), "{line}");
        assert_eq!(jsonio::u64_field(&line, "converged"), Some(1));
        assert!(jsonio::u64_field(&line, "slices").unwrap() > 1);
        let direct = round_robin::run(&g, alpha, 100).unwrap();
        let edges = jsonio::u64_list_field(&line, "final_edges").unwrap();
        let final_graph = Graph::from_edges(
            g.n(),
            edges.iter().map(|&p| crate::protocol::unpack_edge(p)),
        )
        .unwrap();
        assert_eq!(final_graph, direct.final_graph);
        assert_eq!(jsonio::u64_field(&line, "moves"), Some(direct.moves as u64));
        sched.stop();
    }

    #[test]
    fn bad_resume_tokens_are_rejected_not_run() {
        let sched = Scheduler::start(SchedulerConfig::default()).unwrap();
        let line = sched.submit_blocking(QuerySpec {
            id: 4,
            tenant: "t".into(),
            work: Work::Check {
                concept: Concept::Bne,
                graph: generators::path(5),
                alpha: Alpha::integer(2).unwrap(),
                cost_model: CostModelSpec::SumDistances,
            },
            resume: Some("{\"v\":99,\"concept\":\"bne\"}".into()),
            deadline_ms: None,
        });
        assert_eq!(jsonio::u64_field(&line, "ok"), Some(0));
        assert_eq!(jsonio::str_field(&line, "error"), Some("bad_resume"));
        sched.stop();
    }

    #[test]
    fn submit_after_stop_answers_shutdown() {
        let sched = Scheduler::start(SchedulerConfig::default()).unwrap();
        sched.stop();
        let line = sched.submit_blocking(spec(
            5,
            "t",
            Work::Check {
                concept: Concept::Re,
                graph: generators::path(4),
                alpha: Alpha::integer(1).unwrap(),
                cost_model: CostModelSpec::SumDistances,
            },
        ));
        assert_eq!(jsonio::str_field(&line, "error"), Some("shutdown"));
        sched.stop();
    }

    #[test]
    fn submit_racing_stop_always_answers() {
        // Regression: `submit` used to check the stop flag before taking
        // the queue lock; a `stop()` landing in between left the job
        // queued forever after the workers exited, and the response
        // never fired. Loop the race — every submission must answer.
        for round in 0..60 {
            let sched = Arc::new(start(1, 64, u64::MAX));
            let (tx, rx) = mpsc::channel::<String>();
            let submitter = {
                let sched = Arc::clone(&sched);
                std::thread::spawn(move || {
                    for id in 0..8 {
                        let tx = tx.clone();
                        sched.submit(
                            spec(
                                id,
                                "racer",
                                Work::Check {
                                    concept: Concept::Re,
                                    graph: generators::path(4),
                                    alpha: Alpha::integer(1).unwrap(),
                                    cost_model: CostModelSpec::SumDistances,
                                },
                            ),
                            Box::new(move |line| {
                                let _ = tx.send(line);
                            }),
                        );
                        if id == round % 8 {
                            std::thread::yield_now();
                        }
                    }
                })
            };
            sched.stop();
            submitter.join().unwrap();
            for _ in 0..8 {
                let line = rx
                    .recv_timeout(Duration::from_secs(20))
                    .expect("a submission raced stop() and its response never fired");
                assert!(
                    jsonio::u64_field(&line, "id").is_some(),
                    "responses must be well-formed: {line}"
                );
            }
        }
    }

    #[test]
    fn resident_counts_jobs_through_the_dispatch_window() {
        // Regression: between `pop_front` and the in-flight increment a
        // job was counted nowhere, so `resident()` (and the stats rows)
        // could report a busy daemon idle. The count now moves under the
        // pop lock and only drops after the response is delivered, so
        // while the response channel is empty, resident() ≥ 1 always.
        let sched = start(1, 1, u64::MAX);
        // A single round can complete before the first sample lands;
        // repeat until at least one mid-flight sample is observed.
        let mut samples = 0u64;
        for round in 0..200 {
            let (tx, rx) = mpsc::channel::<String>();
            sched.submit(
                check_c40("busy", round),
                Box::new(move |line| {
                    let _ = tx.send(line);
                }),
            );
            loop {
                let resident = sched.resident();
                match rx.try_recv() {
                    Err(mpsc::TryRecvError::Empty) => {
                        assert!(
                            resident >= 1,
                            "job unanswered but resident()=0 after {samples} samples"
                        );
                        samples += 1;
                    }
                    Ok(_) => break,
                    Err(e) => panic!("{e}"),
                }
            }
            if samples > 0 {
                break;
            }
        }
        assert!(samples > 0, "no round straddled a sample point");
        sched.stop();
        assert_eq!(sched.resident(), 0);
    }

    #[test]
    fn weighted_drr_bounds_light_tenant_delay() {
        // One worker, a heavy tenant with a deep queue, then one light
        // query: deficit round-robin must answer the light tenant after
        // a bounded number of heavy completions, regardless of depth.
        let sched = start(1, 512, u64::MAX);
        let heavy_done = Arc::new(AtomicU64::new(0));
        // Park the worker so the heavy queue builds before dispatch
        // order is decided, then count heavy completions.
        let gate = sched.submit_blocking(check_c40("heavy", 0));
        assert_eq!(jsonio::u64_field(&gate, "ok"), Some(1));
        let (heavy_tx, heavy_rx) = mpsc::channel::<String>();
        for id in 1..=40 {
            let done = Arc::clone(&heavy_done);
            let tx = heavy_tx.clone();
            sched.submit(
                check_c40("heavy", id),
                Box::new(move |line| {
                    done.fetch_add(1, Ordering::SeqCst);
                    let _ = tx.send(line);
                }),
            );
        }
        let (light_tx, light_rx) = mpsc::channel::<(String, u64)>();
        {
            let done = Arc::clone(&heavy_done);
            sched.submit(
                check_c40("light", 100),
                Box::new(move |line| {
                    let _ = light_tx.send((line, done.load(Ordering::SeqCst)));
                }),
            );
        }
        let (line, heavy_before_light) = light_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("light tenant response");
        assert_eq!(jsonio::u64_field(&line, "ok"), Some(1), "{line}");
        // Each C40 check is one 512-eval slice; equal weights mean the
        // rotation reaches "light" after at most a couple of heavy
        // slices — never after the whole 40-deep heavy queue.
        assert!(
            heavy_before_light <= 5,
            "light query waited behind {heavy_before_light} of 40 heavy queries"
        );
        for _ in 0..40 {
            let _ = heavy_rx.recv_timeout(Duration::from_secs(60)).unwrap();
        }
        sched.stop();
    }

    #[test]
    fn weights_skew_dispatch_toward_heavier_tenants() {
        let sched = start(1, 512, u64::MAX);
        sched.set_weight("fat", 4);
        // Park the worker on a warmup so both queues build up first.
        let gate = sched.submit_blocking(check_c40("warmup", 0));
        assert_eq!(jsonio::u64_field(&gate, "ok"), Some(1));
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx) = mpsc::channel::<()>();
        for id in 0..8 {
            for (tenant, tag) in [("fat", "fat"), ("thin", "thin")] {
                let order = Arc::clone(&order);
                let tx = tx.clone();
                sched.submit(
                    check_c40(tenant, 200 + id),
                    Box::new(move |_| {
                        order.lock().unwrap().push(tag);
                        let _ = tx.send(());
                    }),
                );
            }
        }
        for _ in 0..16 {
            rx.recv_timeout(Duration::from_secs(120)).unwrap();
        }
        let order = order.lock().unwrap();
        let fat_in_first_five = order.iter().take(5).filter(|t| **t == "fat").count();
        assert!(
            fat_in_first_five >= 3,
            "weight-4 tenant must dominate early dispatch: {order:?}"
        );
        sched.stop();
    }

    #[test]
    fn streaming_progress_precedes_identical_final_line() {
        let sched = start(1, 16, u64::MAX);
        let g = generators::path(9);
        let alpha = Alpha::integer(2).unwrap();
        let work = Work::Trajectory {
            graph: g.clone(),
            alpha,
            rounds: 100,
            cost_model: CostModelSpec::SumDistances,
        };
        let frames: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx) = mpsc::channel::<String>();
        {
            let frames = Arc::clone(&frames);
            sched.submit_with_progress(
                spec(31, "s", work.clone()),
                Box::new(move |frame| frames.lock().unwrap().push(frame)),
                Box::new(move |line| {
                    let _ = tx.send(line);
                }),
            );
        }
        let streamed = rx.recv_timeout(Duration::from_secs(60)).unwrap();
        let frames = frames.lock().unwrap();
        assert!(!frames.is_empty(), "a 16-eval slice must requeue P9");
        let mut last_evals = 0;
        for frame in frames.iter() {
            assert_eq!(jsonio::u64_field(frame, "id"), Some(31), "{frame}");
            assert_eq!(jsonio::u64_field(frame, "progress"), Some(1));
            let evals = jsonio::u64_field(frame, "evals").unwrap();
            assert!(evals >= last_evals, "evals must be monotone: {frames:?}");
            last_evals = evals;
        }
        // The final line is byte-identical to a non-streaming run up to
        // the id — streaming never perturbs the work itself.
        let plain = sched.submit_blocking(spec(31, "s", work));
        assert_eq!(streamed, plain);
        assert!(
            jsonio::u64_field(&streamed, "evals").unwrap() >= last_evals,
            "final evals cannot fall below the last progress frame"
        );
        sched.stop();
    }

    #[test]
    fn grants_and_weights_replay_from_journal() {
        let dir = std::env::temp_dir().join(format!("bncg-sched-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = SchedulerConfig {
            workers: 1,
            slice: 256,
            default_grant: 1000,
            journal: Some(dir.clone()),
        };
        let sched = Scheduler::start(cfg.clone()).unwrap();
        sched.grant("alice", 50);
        sched.grant("alice", 25);
        sched.set_weight("alice", 6);
        sched.grant("bob", 9000);
        sched.stop();
        drop(sched);
        let sched = Scheduler::start(cfg).unwrap();
        let rows = sched.tenant_rows();
        let alice = rows.iter().find(|r| r.name == "alice").unwrap();
        assert_eq!(alice.granted, 75, "grant events replay cumulatively");
        assert_eq!(alice.weight, 6);
        let bob = rows.iter().find(|r| r.name == "bob").unwrap();
        assert_eq!(bob.granted, 9000);
        assert_eq!(bob.weight, 1);
        sched.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
