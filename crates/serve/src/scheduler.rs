//! The time-slicing scheduler: a fixed worker pool interleaving
//! thousands of resident queries through bounded evaluation slices.
//!
//! Every query runs as a sequence of **slices** — each slice is one
//! budgeted call into the solver surface ([`Solver::check_sliced`],
//! [`best_response_with_policy`], the dynamics runners) capped at the
//! scheduler's per-slice evaluation quantum. A slice that completes its
//! query responds; a slice stopped by the quantum requeues the job at
//! the back of the run queue with the serialized frontier it produced,
//! so the queue round-robins over whatever is resident and no query can
//! monopolize a worker. Between slices nothing is held but the job
//! struct itself: the solver's resume contract guarantees a sliced
//! chain reaches the **identical** verdict, witness, and cumulative
//! evaluation count an uninterrupted run produces.
//!
//! Fairness across *tenants* is budget-driven rather than queue-driven:
//! before and after every slice the job's [`Tenant`] pool is consulted,
//! and a drained (or expired) pool sheds the job with zero further work
//! — carrying the resume token, so the shed work is suspended, not
//! lost. An operator `grant` plus a resubmission with the token
//! continues exactly where the shed happened.
//!
//! [`Solver::check_sliced`]: bncg_core::Solver::check_sliced
//! [`best_response_with_policy`]: bncg_core::best_response_with_policy

use crate::protocol::{error_response, render_edges, render_move, sanitize};
use crate::tenant::{Tenant, TenantRegistry, TenantStats};
use bncg_core::solver::{ExecPolicy, Solver, StabilityQuery, Verdict};
use bncg_core::{
    best_response_resume, best_response_with_policy, Alpha, BestResponseFrontier,
    BestResponseVerdict, Concept, CostModelSpec, Frontier, GameState,
};
use bncg_dynamics::round_robin::{self, Checkpoint};
use bncg_dynamics::{self as dynamics, DynamicsCheckpoint, SelectionRule};
use bncg_graph::Graph;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads draining the run queue. Each worker runs its
    /// slices single-threaded — parallelism comes from concurrent
    /// queries, not from sharding one query's scan.
    pub workers: usize,
    /// Candidate evaluations per slice. Smaller slices interleave more
    /// fairly; larger slices amortize the per-slice state rebuild.
    pub slice: u64,
    /// Evaluations granted to tenants that first appear in a query
    /// rather than in an explicit `grant`. The default is effectively
    /// unmetered; multi-tenant operators set this low and fund tenants
    /// explicitly.
    pub default_grant: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 2,
            slice: 2048,
            default_grant: u64::MAX,
        }
    }
}

/// The game-theoretic payload of a query, decoupled from the wire
/// protocol so embedders (tests, benchmarks) can submit work directly.
#[derive(Debug, Clone)]
pub enum Work {
    /// A stability check (`op:"check"`).
    Check {
        /// The queried solution concept.
        concept: Concept,
        /// The instance graph.
        graph: Graph,
        /// Edge price α.
        alpha: Alpha,
        /// The cost model the check prices agents under.
        cost_model: CostModelSpec,
    },
    /// A best-response scan (`op:"best_response"`).
    BestResponse {
        /// The optimizing agent.
        agent: u32,
        /// The instance graph.
        graph: Graph,
        /// Edge price α.
        alpha: Alpha,
        /// The cost model the scan prices the agent under.
        cost_model: CostModelSpec,
    },
    /// Round-robin best-response dynamics (`op:"trajectory"`).
    Trajectory {
        /// The current graph (advances across requeued slices).
        graph: Graph,
        /// Edge price α.
        alpha: Alpha,
        /// Round cap.
        rounds: usize,
        /// The cost model every activation prices under.
        cost_model: CostModelSpec,
    },
    /// Improving-move dynamics under a concept (`op:"dynamics"`).
    Dynamics {
        /// The concept whose violations drive the dynamics.
        concept: Concept,
        /// The current graph (advances across requeued slices).
        graph: Graph,
        /// Edge price α.
        alpha: Alpha,
        /// Step cap.
        steps: usize,
        /// The cost model the violation scans price under.
        cost_model: CostModelSpec,
    },
}

impl Work {
    /// The graph a shed response reports as `final_edges` — only the
    /// dynamics ops, whose graph advances with the trajectory (a check's
    /// graph is the client's own input, not worth echoing).
    fn evolving_graph(&self) -> Option<&Graph> {
        match self {
            Work::Trajectory { graph, .. } | Work::Dynamics { graph, .. } => Some(graph),
            Work::Check { .. } | Work::BestResponse { .. } => None,
        }
    }
}

/// One query as submitted: payload plus scheduling metadata.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Client correlation id, echoed in the response.
    pub id: u64,
    /// Tenant whose pool meters the work.
    pub tenant: String,
    /// The payload.
    pub work: Work,
    /// A resume token from an earlier shed response, verbatim.
    pub resume: Option<String>,
    /// Wall-clock allowance from submission, in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// A resident query: spec plus the scheduler's bookkeeping. The
/// `respond` callback fires exactly once, with the final response line.
struct Job {
    id: u64,
    tenant: Arc<Tenant>,
    work: Work,
    resume: Option<String>,
    slices: u64,
    deadline: Option<Instant>,
    respond: Box<dyn FnOnce(String) + Send>,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stop: AtomicBool,
    slice: u64,
    in_flight: AtomicU64,
    tenants: TenantRegistry,
}

/// The worker pool plus run queue. See the module docs for the
/// scheduling model.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts the worker pool.
    #[must_use]
    pub fn start(cfg: SchedulerConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            slice: cfg.slice.max(1),
            in_flight: AtomicU64::new(0),
            tenants: TenantRegistry::new(cfg.default_grant),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Scheduler {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Enqueues a query; `respond` fires exactly once with the response
    /// line (immediately, when the scheduler is already stopping).
    pub fn submit(&self, spec: QuerySpec, respond: Box<dyn FnOnce(String) + Send>) {
        if self.shared.stop.load(Ordering::Acquire) {
            respond(error_response(
                spec.id,
                "shutdown",
                "daemon is shutting down",
                spec.resume.as_deref(),
                None,
            ));
            return;
        }
        let job = Job {
            id: spec.id,
            tenant: self.shared.tenants.get_or_create(&spec.tenant),
            work: spec.work,
            resume: spec.resume,
            slices: 0,
            deadline: spec
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            respond,
        };
        self.shared
            .queue
            .lock()
            .expect("no poisoning")
            .push_back(job);
        self.shared.available.notify_one();
    }

    /// [`submit`](Scheduler::submit) and block for the response line —
    /// the convenience path for tests and benchmarks.
    pub fn submit_blocking(&self, spec: QuerySpec) -> String {
        let (tx, rx) = mpsc::channel();
        self.submit(
            spec,
            Box::new(move |line| {
                let _ = tx.send(line);
            }),
        );
        rx.recv().expect("scheduler dropped the response")
    }

    /// Funds a tenant (see [`TenantRegistry::grant`]). Returns its new
    /// total grant.
    pub fn grant(&self, tenant: &str, evals: u64) -> u64 {
        self.shared.tenants.grant(tenant, evals)
    }

    /// Queries resident right now: queued plus mid-slice.
    #[must_use]
    pub fn resident(&self) -> u64 {
        let queued = self.shared.queue.lock().expect("no poisoning").len() as u64;
        queued + self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Per-tenant accounting rows.
    #[must_use]
    pub fn tenants(&self) -> Vec<TenantStats> {
        self.shared.tenants.snapshot()
    }

    /// Queued (not yet mid-slice) jobs per tenant name — the `stats`
    /// op's per-tenant queue depth. One pass under the queue lock.
    #[must_use]
    pub fn queue_depths(&self) -> std::collections::HashMap<String, u64> {
        let queue = self.shared.queue.lock().expect("no poisoning");
        let mut depths = std::collections::HashMap::new();
        for job in queue.iter() {
            *depths.entry(job.tenant.name().to_string()).or_insert(0) += 1;
        }
        depths
    }

    /// Stops the pool: queued jobs still get slices, but unfinished work
    /// is shed with its resume token instead of requeued, so the drain
    /// is bounded by one slice per resident query. Idempotent; blocks
    /// until every worker has exited.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.available.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("no poisoning")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("no poisoning");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.stop.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.available.wait(queue).expect("no poisoning");
            }
        };
        let Some(mut job) = job else { return };
        shared.in_flight.fetch_add(1, Ordering::Relaxed);
        job.slices += 1;
        let requeue = match drive(shared, &mut job) {
            SliceOutcome::Done(line) => {
                (job.respond)(line);
                None
            }
            SliceOutcome::Requeue => Some(job),
        };
        if let Some(job) = requeue {
            shared.queue.lock().expect("no poisoning").push_back(job);
            shared.available.notify_one();
        }
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// What one slice left behind: a response line (the query is over) or a
/// requeue order (the job's `resume` token has been advanced in place).
enum SliceOutcome {
    Done(String),
    Requeue,
}

/// The uniform suspension response: `error` is `shed`/`deadline`/
/// `shutdown`, the job's current resume token rides along, and the
/// dynamics ops echo their advanced graph so the client can resume
/// against it. Rendered fresh at each call site — after a slice the
/// trajectory graph has moved.
fn suspend(job: &Job, error: &str, reason: &str) -> SliceOutcome {
    let final_edges = job.work.evolving_graph().map(render_edges);
    SliceOutcome::Done(error_response(
        job.id,
        error,
        reason,
        job.resume.as_deref(),
        final_edges.as_deref(),
    ))
}

/// Admission control around one slice of work.
fn drive(shared: &Shared, job: &mut Job) -> SliceOutcome {
    if job.deadline.is_some_and(|d| Instant::now() >= d) {
        return suspend(job, "deadline", "query deadline passed");
    }
    if !job.tenant.pool().admits() {
        return suspend(job, "shed", "tenant budget pool is drained");
    }
    let left = job
        .deadline
        .map(|d| d.saturating_duration_since(Instant::now()));
    let mut policy = ExecPolicy::default().with_threads(1);
    policy.deadline = left;
    match step(job, &policy, shared.slice) {
        Ok(Stepped::Finished(line)) => SliceOutcome::Done(line),
        Ok(Stepped::Suspended(token)) => {
            job.resume = Some(token);
            if shared.stop.load(Ordering::Acquire) {
                return suspend(job, "shutdown", "daemon is shutting down");
            }
            if job.deadline.is_some_and(|d| Instant::now() >= d) {
                return suspend(job, "deadline", "query deadline passed");
            }
            if !job.tenant.pool().admits() {
                return suspend(job, "shed", "tenant budget pool is drained");
            }
            SliceOutcome::Requeue
        }
        Err(reason) => {
            let error = if job.resume.is_some() {
                "bad_resume"
            } else {
                "bad_request"
            };
            SliceOutcome::Done(error_response(
                job.id,
                error,
                &sanitize(&reason),
                None,
                None,
            ))
        }
    }
}

/// A slice's work result before scheduling policy is applied.
enum Stepped {
    /// The query completed — here is the `ok:1` response line.
    Finished(String),
    /// The slice quantum stopped the work — here is the fresh resume
    /// token (the dynamics arms have also advanced their job's graph).
    Suspended(String),
}

/// One budgeted slice of actual work. `Err` carries a human-readable
/// reason for `bad_request`/`bad_resume` responses.
fn step(job: &mut Job, policy: &ExecPolicy, slice: u64) -> Result<Stepped, String> {
    let id = job.id;
    let slices = job.slices;
    let tenant = Arc::clone(&job.tenant);
    let pool = tenant.pool();
    let resume = job.resume.clone();
    match &mut job.work {
        Work::Check {
            concept,
            graph,
            alpha,
            cost_model,
        } => {
            let mut query =
                StabilityQuery::new(*concept, graph, *alpha).with_cost_model(*cost_model);
            if let Some(token) = &resume {
                let frontier: Frontier = token.parse().map_err(|e| format!("{e}"))?;
                query = query.resume(frontier);
            }
            let verdict = Solver::new(policy.clone())
                .check_sliced(&query, pool, slice)
                .map_err(|e| format!("{e}"))?;
            match verdict {
                Verdict::Stable { evals, .. } => {
                    if evals == 0 {
                        // Polynomial concepts complete unmetered; bill a
                        // flat rate so drained tenants cannot freeride.
                        pool.charge(1);
                    }
                    Ok(Stepped::Finished(format!(
                        "{{\"id\":{id},\"ok\":1,\"op\":\"check\",\"verdict\":\"stable\",\
                         \"evals\":{evals},\"slices\":{slices}}}"
                    )))
                }
                Verdict::Unstable { witness, evals, .. } => {
                    if evals == 0 {
                        pool.charge(1);
                    }
                    Ok(Stepped::Finished(format!(
                        "{{\"id\":{id},\"ok\":1,\"op\":\"check\",\"verdict\":\"unstable\",\
                         \"witness\":{},\"evals\":{evals},\"slices\":{slices}}}",
                        render_move(&witness)
                    )))
                }
                Verdict::Exhausted { frontier, .. } => Ok(Stepped::Suspended(frontier.to_json())),
            }
        }
        Work::BestResponse {
            agent,
            graph,
            alpha,
            cost_model,
        } => {
            let mut budgeted = policy.clone();
            budgeted.eval_budget = Some(slice.min(pool.remaining().max(1)));
            let state = GameState::with_cost_model(graph.clone(), *alpha, *cost_model);
            let (verdict, prior) = match &resume {
                Some(token) => {
                    let frontier: BestResponseFrontier =
                        token.parse().map_err(|e| format!("{e}"))?;
                    let prior = frontier.evals();
                    (
                        best_response_resume(&state, &budgeted, &frontier)
                            .map_err(|e| format!("{e}"))?,
                        prior,
                    )
                }
                None => (
                    best_response_with_policy(&state, *agent, &budgeted)
                        .map_err(|e| format!("{e}"))?,
                    0,
                ),
            };
            // No batch-pool plumbing on the optimization surface — bill
            // the slice's cumulative-eval delta by hand (min 1, so even
            // no-op slices drain a finite pool and the shed fires).
            pool.charge(verdict.evals().saturating_sub(prior).max(1));
            match verdict {
                BestResponseVerdict::Optimal {
                    response, evals, ..
                } => {
                    let mv = match &response.best {
                        Some(mv) => format!(",\"move\":{}", render_move(mv)),
                        None => String::new(),
                    };
                    Ok(Stepped::Finished(format!(
                        "{{\"id\":{id},\"ok\":1,\"op\":\"best_response\",\"improving\":{}{mv},\
                         \"evals\":{evals},\"slices\":{slices}}}",
                        u8::from(response.best.is_some())
                    )))
                }
                BestResponseVerdict::ImprovedSoFar { frontier, .. }
                | BestResponseVerdict::Exhausted { frontier, .. } => {
                    Ok(Stepped::Suspended(frontier.to_json()))
                }
            }
        }
        Work::Trajectory {
            graph,
            alpha,
            rounds,
            cost_model,
        } => {
            let mut budgeted = policy.clone();
            budgeted.eval_budget = Some(slice.min(pool.remaining().max(1)));
            let (out, prior) = match &resume {
                Some(token) => {
                    let ckpt: Checkpoint = token.parse().map_err(|e| format!("{e}"))?;
                    let prior = ckpt.evals();
                    (
                        round_robin::resume_under(
                            graph,
                            *alpha,
                            *cost_model,
                            *rounds,
                            &budgeted,
                            &ckpt,
                        )
                        .map_err(|e| format!("{e}"))?,
                        prior,
                    )
                }
                None => (
                    round_robin::run_with_policy_under(
                        graph,
                        *alpha,
                        *cost_model,
                        *rounds,
                        &budgeted,
                    )
                    .map_err(|e| format!("{e}"))?,
                    0,
                ),
            };
            pool.charge(out.evals.saturating_sub(prior).max(1));
            *graph = out.final_graph.clone();
            match out.checkpoint {
                Some(ckpt) => Ok(Stepped::Suspended(ckpt.to_json())),
                None => Ok(Stepped::Finished(format!(
                    "{{\"id\":{id},\"ok\":1,\"op\":\"trajectory\",\"converged\":{},\
                     \"cycled\":{},\"rounds\":{},\"moves\":{},\"evals\":{},\
                     \"slices\":{slices},\"final_edges\":{}}}",
                    u8::from(out.converged),
                    u8::from(out.cycled),
                    out.rounds,
                    out.moves,
                    out.evals,
                    render_edges(&out.final_graph)
                ))),
            }
        }
        Work::Dynamics {
            concept,
            graph,
            alpha,
            steps,
            cost_model,
        } => {
            let mut budgeted = policy.clone();
            budgeted.eval_budget = Some(slice.min(pool.remaining().max(1)));
            let (traj, prior_evals, prior_steps) = match &resume {
                Some(token) => {
                    let ckpt: DynamicsCheckpoint = token.parse().map_err(|e| format!("{e}"))?;
                    let (pe, ps) = (ckpt.evals(), ckpt.steps());
                    (
                        dynamics::resume_with_policy_under(
                            graph,
                            *alpha,
                            *cost_model,
                            *concept,
                            SelectionRule::First,
                            *steps,
                            &budgeted,
                            &ckpt,
                        )
                        .map_err(|e| format!("{e}"))?,
                        pe,
                        ps,
                    )
                }
                None => (
                    dynamics::run_with_policy_under(
                        graph,
                        *alpha,
                        *cost_model,
                        *concept,
                        SelectionRule::First,
                        *steps,
                        &budgeted,
                    )
                    .map_err(|e| format!("{e}"))?,
                    0,
                    0,
                ),
            };
            pool.charge(traj.evals.saturating_sub(prior_evals).max(1));
            let steps_total = prior_steps + traj.len();
            *graph = traj.final_graph.clone();
            match traj.checkpoint {
                Some(ckpt) => Ok(Stepped::Suspended(ckpt.to_json())),
                None => Ok(Stepped::Finished(format!(
                    "{{\"id\":{id},\"ok\":1,\"op\":\"dynamics\",\"converged\":{},\
                     \"steps\":{steps_total},\"evals\":{},\"slices\":{slices},\
                     \"final_edges\":{}}}",
                    u8::from(traj.converged),
                    traj.evals,
                    render_edges(&traj.final_graph)
                ))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_core::jsonio;
    use bncg_graph::generators;

    fn spec(id: u64, tenant: &str, work: Work) -> QuerySpec {
        QuerySpec {
            id,
            tenant: tenant.into(),
            work,
            resume: None,
            deadline_ms: None,
        }
    }

    #[test]
    fn sliced_check_matches_direct_solver_run() {
        let sched = Scheduler::start(SchedulerConfig {
            workers: 1,
            slice: 64,
            default_grant: u64::MAX,
        });
        // C40 at α = 370 is BNE-stable with ~120 genuinely priced
        // candidates (see tests/solver.rs) — enough to straddle slices.
        let g = generators::cycle(40);
        let alpha = Alpha::integer(370).unwrap();
        let line = sched.submit_blocking(spec(
            9,
            "t",
            Work::Check {
                concept: Concept::Bne,
                graph: g.clone(),
                alpha,
                cost_model: CostModelSpec::SumDistances,
            },
        ));
        let direct = Solver::default()
            .check(&StabilityQuery::new(Concept::Bne, &g, alpha))
            .unwrap();
        assert_eq!(jsonio::u64_field(&line, "ok"), Some(1), "{line}");
        let verdict = jsonio::str_field(&line, "verdict").unwrap();
        match direct {
            Verdict::Stable { evals, .. } => {
                assert_eq!(verdict, "stable");
                assert_eq!(jsonio::u64_field(&line, "evals"), Some(evals));
            }
            Verdict::Unstable { evals, .. } => {
                assert_eq!(verdict, "unstable");
                assert_eq!(jsonio::u64_field(&line, "evals"), Some(evals));
            }
            Verdict::Exhausted { .. } => panic!("unbudgeted run cannot exhaust"),
        }
        assert!(
            jsonio::u64_field(&line, "slices").unwrap() > 1,
            "a 64-eval slice must requeue the C40 BNE scan: {line}"
        );
        sched.stop();
    }

    #[test]
    fn drained_tenant_sheds_with_resume_token() {
        let sched = Scheduler::start(SchedulerConfig {
            workers: 1,
            slice: 32,
            default_grant: 40,
        });
        let g = generators::cycle(40);
        let alpha = Alpha::integer(370).unwrap();
        let line = sched.submit_blocking(spec(
            1,
            "poor",
            Work::Check {
                concept: Concept::Bne,
                graph: g.clone(),
                alpha,
                cost_model: CostModelSpec::SumDistances,
            },
        ));
        assert_eq!(jsonio::u64_field(&line, "ok"), Some(0), "{line}");
        assert_eq!(jsonio::str_field(&line, "error"), Some("shed"));
        let token = jsonio::object_field(&line, "resume")
            .expect("shed responses carry the resume token")
            .to_string();
        // Topping the tenant up and resubmitting with the shed token
        // completes the scan with the cumulative eval count intact.
        sched.grant("poor", u64::MAX - 40);
        let line = sched.submit_blocking(QuerySpec {
            id: 2,
            tenant: "poor".into(),
            work: Work::Check {
                concept: Concept::Bne,
                graph: g.clone(),
                alpha,
                cost_model: CostModelSpec::SumDistances,
            },
            resume: Some(token),
            deadline_ms: None,
        });
        assert_eq!(jsonio::u64_field(&line, "ok"), Some(1), "{line}");
        let direct = Solver::default()
            .check(&StabilityQuery::new(Concept::Bne, &g, alpha))
            .unwrap();
        let direct_evals = match direct {
            Verdict::Stable { evals, .. } | Verdict::Unstable { evals, .. } => evals,
            Verdict::Exhausted { .. } => panic!("unbudgeted run cannot exhaust"),
        };
        assert_eq!(
            jsonio::u64_field(&line, "evals"),
            Some(direct_evals),
            "resumed chain must report the uninterrupted cumulative evals"
        );
        sched.stop();
    }

    #[test]
    fn trajectory_advances_its_graph_across_slices() {
        let sched = Scheduler::start(SchedulerConfig {
            workers: 2,
            slice: 16,
            default_grant: u64::MAX,
        });
        let g = generators::path(9);
        let alpha = Alpha::integer(2).unwrap();
        let line = sched.submit_blocking(spec(
            3,
            "t",
            Work::Trajectory {
                graph: g.clone(),
                alpha,
                rounds: 100,
                cost_model: CostModelSpec::SumDistances,
            },
        ));
        assert_eq!(jsonio::u64_field(&line, "ok"), Some(1), "{line}");
        assert_eq!(jsonio::u64_field(&line, "converged"), Some(1));
        assert!(jsonio::u64_field(&line, "slices").unwrap() > 1);
        let direct = round_robin::run(&g, alpha, 100).unwrap();
        let edges = jsonio::u64_list_field(&line, "final_edges").unwrap();
        let final_graph = Graph::from_edges(
            g.n(),
            edges.iter().map(|&p| crate::protocol::unpack_edge(p)),
        )
        .unwrap();
        assert_eq!(final_graph, direct.final_graph);
        assert_eq!(jsonio::u64_field(&line, "moves"), Some(direct.moves as u64));
        sched.stop();
    }

    #[test]
    fn bad_resume_tokens_are_rejected_not_run() {
        let sched = Scheduler::start(SchedulerConfig::default());
        let line = sched.submit_blocking(QuerySpec {
            id: 4,
            tenant: "t".into(),
            work: Work::Check {
                concept: Concept::Bne,
                graph: generators::path(5),
                alpha: Alpha::integer(2).unwrap(),
                cost_model: CostModelSpec::SumDistances,
            },
            resume: Some("{\"v\":99,\"concept\":\"bne\"}".into()),
            deadline_ms: None,
        });
        assert_eq!(jsonio::u64_field(&line, "ok"), Some(0));
        assert_eq!(jsonio::str_field(&line, "error"), Some("bad_resume"));
        sched.stop();
    }

    #[test]
    fn submit_after_stop_answers_shutdown() {
        let sched = Scheduler::start(SchedulerConfig::default());
        sched.stop();
        let line = sched.submit_blocking(spec(
            5,
            "t",
            Work::Check {
                concept: Concept::Re,
                graph: generators::path(4),
                alpha: Alpha::integer(1).unwrap(),
                cost_model: CostModelSpec::SumDistances,
            },
        ));
        assert_eq!(jsonio::str_field(&line, "error"), Some("shutdown"));
        sched.stop();
    }
}
