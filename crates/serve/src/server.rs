//! The TCP front end: a line-in/line-out adapter between sockets and
//! the [`Scheduler`].
//!
//! One accept-loop thread spawns a detached reader per connection. Each
//! request line is parsed ([`protocol::parse_request`]) and either
//! answered inline (the control ops: `grant`, `stats`, `shutdown`) or
//! submitted to the scheduler with a callback that writes the response
//! line back on the same socket. Responses are correlated by `id`, not
//! by order — a long check submitted first can answer after a short one
//! submitted later, which is the whole point of the slicing scheduler.
//!
//! [`protocol::parse_request`]: crate::protocol::parse_request

use crate::atlas::{relabel_live_response, AtlasService};
use crate::protocol::{self, error_response, BadRequest, Request};
use crate::scheduler::{QuerySpec, Scheduler, SchedulerConfig, Work};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Longest accepted request line, in bytes. A 1024-node dense graph
/// packs into well under this; anything longer is a protocol error, not
/// a buffering obligation.
pub const MAX_LINE: u64 = 1 << 20;

/// Server configuration: where to listen plus the scheduler knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. The default asks the OS for an ephemeral localhost
    /// port — read it back from [`Server::addr`].
    pub addr: String,
    /// The scheduler underneath.
    pub scheduler: SchedulerConfig,
    /// The (optional) precomputed stability corpus behind the
    /// `atlas_lookup` op. Defaults to empty: every lookup falls through
    /// to a live check.
    pub atlas: Arc<AtlasService>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig::default(),
            atlas: Arc::new(AtlasService::empty()),
        }
    }
}

/// A running daemon. Dropping it does **not** stop it — call
/// [`Server::stop`] (or send the `shutdown` op) and then
/// [`Server::wait`].
pub struct Server {
    local: SocketAddr,
    scheduler: Arc<Scheduler>,
    atlas: Arc<AtlasService>,
    stop: Arc<AtomicBool>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Binds, starts the scheduler and the accept loop, and returns.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local = listener.local_addr()?;
        let scheduler = Arc::new(Scheduler::start(cfg.scheduler));
        let atlas = cfg.atlas;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let scheduler = Arc::clone(&scheduler);
            let atlas = Arc::clone(&atlas);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    let scheduler = Arc::clone(&scheduler);
                    let atlas = Arc::clone(&atlas);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || serve_connection(&conn, &scheduler, &atlas, &stop));
                }
            })
        };
        Ok(Server {
            local,
            scheduler,
            atlas,
            stop,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.local
    }

    /// The scheduler, for embedders that mix wire and direct submission.
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The atlas service behind `atlas_lookup`, for embedders and tests
    /// inspecting hit/miss counters.
    #[must_use]
    pub fn atlas(&self) -> &AtlasService {
        &self.atlas
    }

    /// Stops accepting, drains the scheduler (resident queries get one
    /// more slice and are shed with resume tokens), and joins the accept
    /// loop. Idempotent.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks in `incoming()`; poke it awake with a
        // throwaway connection so it observes the flag.
        let _ = TcpStream::connect(self.local);
        if let Some(handle) = self.accept.lock().expect("no poisoning").take() {
            let _ = handle.join();
        }
        self.scheduler.stop();
    }

    /// Blocks until the daemon has been stopped (by [`Server::stop`] or
    /// a `shutdown` request).
    pub fn wait(&self) {
        if let Some(handle) = self.accept.lock().expect("no poisoning").take() {
            let _ = handle.join();
        }
        self.scheduler.stop();
    }
}

/// Writes one response line to the shared socket. Failures are ignored:
/// a client that hung up forfeits its remaining responses.
fn write_line(out: &Mutex<TcpStream>, line: &str) {
    let mut sock = out.lock().expect("no poisoning");
    let _ = sock.write_all(line.as_bytes());
    let _ = sock.write_all(b"\n");
    let _ = sock.flush();
}

fn serve_connection(
    conn: &TcpStream,
    scheduler: &Arc<Scheduler>,
    atlas: &Arc<AtlasService>,
    stop: &Arc<AtomicBool>,
) {
    let Ok(write_half) = conn.try_clone() else {
        return;
    };
    let out = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(conn);
    loop {
        // `take` caps the read so a client cannot grow one line without
        // bound; a line hitting the cap exactly is indistinguishable
        // from a truncated one and is rejected below as unparseable.
        let mut line = String::new();
        match (&mut reader).take(MAX_LINE).read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match protocol::parse_request(line) {
            Err(BadRequest { id, reason }) => {
                write_line(
                    &out,
                    &error_response(id, "bad_request", &reason, None, None),
                );
            }
            Ok(request) => dispatch(
                request,
                conn.local_addr().ok(),
                scheduler,
                atlas,
                stop,
                &out,
            ),
        }
    }
}

fn dispatch(
    request: Request,
    listener: Option<SocketAddr>,
    scheduler: &Arc<Scheduler>,
    atlas: &Arc<AtlasService>,
    stop: &Arc<AtomicBool>,
    out: &Arc<Mutex<TcpStream>>,
) {
    let id = request.id();
    let query = match request {
        Request::Grant { id, tenant, evals } => {
            let total = scheduler.grant(&tenant, evals);
            write_line(
                out,
                &format!(
                    "{{\"id\":{id},\"ok\":1,\"op\":\"grant\",\"tenant\":\"{tenant}\",\
                     \"granted\":{total}}}"
                ),
            );
            return;
        }
        Request::Stats { id } => {
            let depths = scheduler.queue_depths();
            let rows: Vec<String> = scheduler
                .tenants()
                .iter()
                .map(|t| {
                    format!(
                        "{{\"tenant\":\"{}\",\"granted\":{},\"used\":{},\"queued\":{}}}",
                        t.name,
                        t.granted,
                        t.used,
                        depths.get(&t.name).copied().unwrap_or(0)
                    )
                })
                .collect();
            write_line(
                out,
                &format!(
                    "{{\"id\":{id},\"ok\":1,\"op\":\"stats\",\"resident\":{},\
                     \"atlas_hits\":{},\"atlas_misses\":{},\"tenants\":[{}]}}",
                    scheduler.resident(),
                    atlas.hits(),
                    atlas.misses(),
                    rows.join(",")
                ),
            );
            return;
        }
        Request::Shutdown { id } => {
            write_line(
                out,
                &format!("{{\"id\":{id},\"ok\":1,\"op\":\"shutdown\"}}"),
            );
            stop.store(true, Ordering::Release);
            scheduler.stop();
            // The accept loop blocks in `incoming()`; our end of this
            // connection shares the listener's address, so a throwaway
            // connect to it wakes the loop to observe the stop flag.
            if let Some(addr) = listener {
                let _ = TcpStream::connect(addr);
            }
            return;
        }
        Request::AtlasLookup {
            id,
            tenant,
            concept,
            alpha,
            graph,
            cost_model,
            resume,
            deadline_ms,
        } => {
            // Fresh queries may hit the corpus; a resume token means a
            // live fall-through is already in flight — continue it.
            if resume.is_none() {
                if let Some(line) = atlas.try_answer(id, concept, &graph, alpha, cost_model) {
                    write_line(out, &line);
                    return;
                }
            }
            let out = Arc::clone(out);
            scheduler.submit(
                QuerySpec {
                    id,
                    tenant,
                    work: Work::Check {
                        concept,
                        graph,
                        alpha,
                        cost_model,
                    },
                    resume,
                    deadline_ms,
                },
                Box::new(move |line| write_line(&out, &relabel_live_response(&line))),
            );
            return;
        }
        Request::Check {
            id,
            tenant,
            concept,
            alpha,
            graph,
            cost_model,
            resume,
            deadline_ms,
        } => QuerySpec {
            id,
            tenant,
            work: Work::Check {
                concept,
                graph,
                alpha,
                cost_model,
            },
            resume,
            deadline_ms,
        },
        Request::BestResponse {
            id,
            tenant,
            agent,
            alpha,
            graph,
            cost_model,
            resume,
            deadline_ms,
        } => QuerySpec {
            id,
            tenant,
            work: Work::BestResponse {
                agent,
                graph,
                alpha,
                cost_model,
            },
            resume,
            deadline_ms,
        },
        Request::Trajectory {
            id,
            tenant,
            alpha,
            graph,
            rounds,
            cost_model,
            resume,
            deadline_ms,
        } => QuerySpec {
            id,
            tenant,
            work: Work::Trajectory {
                graph,
                alpha,
                rounds,
                cost_model,
            },
            resume,
            deadline_ms,
        },
        Request::Dynamics {
            id,
            tenant,
            concept,
            alpha,
            graph,
            steps,
            cost_model,
            resume,
            deadline_ms,
        } => QuerySpec {
            id,
            tenant,
            work: Work::Dynamics {
                concept,
                graph,
                alpha,
                steps,
                cost_model,
            },
            resume,
            deadline_ms,
        },
    };
    debug_assert_eq!(query.id, id);
    let out = Arc::clone(out);
    scheduler.submit(query, Box::new(move |line| write_line(&out, &line)));
}
