//! The TCP front end: a single readiness loop multiplexing every
//! connection over the [`reactor`]'s `poll(2)` substrate.
//!
//! One event-loop thread owns the listener and every connection. Each
//! socket is non-blocking; the loop polls for readability, frames
//! request lines out of per-connection read buffers, and either answers
//! inline (the control ops: `grant`, `stats`, `shutdown`) or submits to
//! the scheduler with a callback that appends the response to the
//! connection's **outbox** and wakes the loop through a self-pipe.
//! Responses are correlated by `id`, not by order — a long check
//! submitted first can answer after a short one submitted later, which
//! is the whole point of the slicing scheduler. An idle connection
//! costs two byte buffers and one `pollfd` entry; thousands of them
//! cost bytes, not threads.
//!
//! **Framing.** A request line longer than [`MAX_LINE`] is answered
//! with exactly one `bad_request` and then discarded *through its
//! terminating newline* — the oversized line's tail is never parsed as
//! follow-on requests, and the connection stays consistent.
//!
//! **Backpressure.** A connection whose buffered responses exceed a
//! high-water mark stops being polled for reads until the client drains
//! its side, so a client that stops reading cannot balloon the daemon's
//! memory with pipelined queries.
//!
//! **Shutdown.** The wire `shutdown` op (or [`Server::stop`]) signals a
//! small supervisor thread: it stops the scheduler — resident queries
//! get one more slice and are shed with resume tokens, their responses
//! flowing through the still-running event loop — then tells the loop
//! to flush and exit.
//!
//! [`reactor`]: crate::reactor

use crate::atlas::{relabel_live_response, AtlasService};
use crate::protocol::{self, error_response, BadRequest, Request};
use crate::reactor::{self, PollFd, WakeReceiver, Waker, POLLIN, POLLOUT};
use crate::scheduler::{QuerySpec, Scheduler, SchedulerConfig, Work};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Longest accepted request line, in bytes. A 1024-node dense graph
/// packs into well under this; anything longer is a protocol error, not
/// a buffering obligation.
pub const MAX_LINE: usize = 1 << 20;

/// Buffered-response ceiling per connection before the loop stops
/// reading from it (resumes as the client drains).
const HIGH_WATER: usize = 1 << 20;

/// Per-read scratch size in the event loop.
const READ_CHUNK: usize = 64 * 1024;

/// Poll timeout: a liveness backstop so control-flag transitions are
/// observed even if a wakeup is lost; every hot path wakes explicitly.
const POLL_TICK_MS: i32 = 500;

/// Server configuration: where to listen plus the scheduler knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. The default asks the OS for an ephemeral localhost
    /// port — read it back from [`Server::addr`].
    pub addr: String,
    /// The scheduler underneath.
    pub scheduler: SchedulerConfig,
    /// The (optional) precomputed stability corpus behind the
    /// `atlas_lookup` op. Defaults to empty: every lookup falls through
    /// to a live check.
    pub atlas: Arc<AtlasService>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig::default(),
            atlas: Arc::new(AtlasService::empty()),
        }
    }
}

/// Shutdown coordination between the wire, the event loop, and the
/// supervisor thread.
struct Control {
    /// Set by the `shutdown` op or [`Server::stop`]; the supervisor
    /// waits on it.
    shutdown: Mutex<bool>,
    cv: Condvar,
    /// Stop accepting new connections (set with `shutdown`).
    draining: AtomicBool,
    /// Set by the supervisor once the scheduler has drained: the event
    /// loop flushes and exits.
    exit: AtomicBool,
}

impl Control {
    fn new() -> Control {
        Control {
            shutdown: Mutex::new(false),
            cv: Condvar::new(),
            draining: AtomicBool::new(false),
            exit: AtomicBool::new(false),
        }
    }

    fn request_shutdown(&self) {
        self.draining.store(true, Ordering::Release);
        *self.shutdown.lock().expect("no poisoning") = true;
        self.cv.notify_all();
    }

    fn await_shutdown(&self) {
        let mut flagged = self.shutdown.lock().expect("no poisoning");
        while !*flagged {
            flagged = self.cv.wait(flagged).expect("no poisoning");
        }
    }
}

/// The cross-thread half of a connection: scheduler callbacks push
/// response lines here; the event loop drains it to the socket.
struct ConnShared {
    outbox: Mutex<Vec<u8>>,
    /// Mirror of the outbox length, maintained under the outbox lock —
    /// lets the event loop size 500 idle connections' poll entries with
    /// one relaxed load each instead of 500 lock acquisitions per
    /// wakeup.
    queued: AtomicUsize,
    /// Once set, pushed lines are dropped — the client hung up and
    /// forfeited its remaining responses.
    closed: AtomicBool,
    waker: Arc<Waker>,
}

impl ConnShared {
    fn push_line(&self, line: &str) {
        if self.closed.load(Ordering::Acquire) {
            return;
        }
        {
            let mut out = self.outbox.lock().expect("no poisoning");
            out.reserve(line.len() + 1);
            out.extend_from_slice(line.as_bytes());
            out.push(b'\n');
            self.queued.store(out.len(), Ordering::Release);
        }
        self.waker.wake();
    }
}

/// One connection, owned by the event loop.
struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    /// Bytes of the current (incomplete) request line.
    read_buf: Vec<u8>,
    /// Response bytes claimed from the outbox, partially written.
    pending: Vec<u8>,
    /// Mid-oversized-line: drop input until the next `\n`.
    discarding: bool,
    /// Read side finished (EOF or error): flush and drop.
    eof: bool,
    /// Write side failed hard: drop immediately.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, waker: Arc<Waker>) -> Conn {
        Conn {
            stream,
            shared: Arc::new(ConnShared {
                outbox: Mutex::new(Vec::new()),
                queued: AtomicUsize::new(0),
                closed: AtomicBool::new(false),
                waker,
            }),
            read_buf: Vec::new(),
            pending: Vec::new(),
            discarding: false,
            eof: false,
            dead: false,
        }
    }

    /// Response bytes not yet on the wire (outbox plus claimed).
    /// Lock-free: the poll-set build and the liveness check run this
    /// for every connection on every wakeup.
    fn buffered(&self) -> usize {
        self.pending.len() + self.shared.queued.load(Ordering::Acquire)
    }

    fn finished(&self) -> bool {
        self.dead || (self.eof && self.buffered() == 0)
    }

    /// Drains the socket's readable bytes into request lines.
    fn read_ready(
        &mut self,
        scheduler: &Arc<Scheduler>,
        atlas: &Arc<AtlasService>,
        ctl: &Arc<Control>,
    ) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return;
                }
                Ok(k) => {
                    self.ingest(&chunk[..k], scheduler, atlas, ctl);
                    if k < chunk.len() {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.eof = true;
                    return;
                }
            }
        }
    }

    /// Frames `bytes` into lines, enforcing [`MAX_LINE`]: an oversized
    /// line gets exactly one `bad_request` and is discarded through its
    /// terminating newline — its tail is never parsed as requests.
    fn ingest(
        &mut self,
        bytes: &[u8],
        scheduler: &Arc<Scheduler>,
        atlas: &Arc<AtlasService>,
        ctl: &Arc<Control>,
    ) {
        let mut rest = bytes;
        while !rest.is_empty() {
            if self.discarding {
                match rest.iter().position(|&b| b == b'\n') {
                    Some(nl) => {
                        self.discarding = false;
                        rest = &rest[nl + 1..];
                    }
                    None => return,
                }
                continue;
            }
            match rest.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    if self.read_buf.len() + nl > MAX_LINE {
                        self.reject_oversized();
                    } else {
                        self.read_buf.extend_from_slice(&rest[..nl]);
                        let line = std::mem::take(&mut self.read_buf);
                        handle_line(&line, &self.shared, scheduler, atlas, ctl);
                    }
                    rest = &rest[nl + 1..];
                }
                None => {
                    if self.read_buf.len() + rest.len() > MAX_LINE {
                        self.reject_oversized();
                        self.discarding = true;
                        return;
                    }
                    self.read_buf.extend_from_slice(rest);
                    return;
                }
            }
        }
    }

    fn reject_oversized(&mut self) {
        self.read_buf.clear();
        // The line's id is untrusted (it may sit in the truncated tail),
        // so the response carries id 0 like any unreadable request.
        self.shared.push_line(&error_response(
            0,
            "bad_request",
            &format!("request line exceeds {MAX_LINE} bytes"),
            None,
            None,
        ));
    }

    /// Pushes buffered response bytes to the socket until it would
    /// block (or everything is out).
    fn flush(&mut self) {
        loop {
            if self.pending.is_empty() {
                if self.shared.queued.load(Ordering::Acquire) == 0 {
                    return;
                }
                let mut out = self.shared.outbox.lock().expect("no poisoning");
                std::mem::swap(&mut self.pending, &mut *out);
                self.shared.queued.store(0, Ordering::Release);
                if self.pending.is_empty() {
                    return;
                }
            }
            let mut written = 0;
            while written < self.pending.len() {
                match self.stream.write(&self.pending[written..]) {
                    Ok(0) => {
                        self.dead = true;
                        break;
                    }
                    Ok(k) => written += k,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.dead = true;
                        break;
                    }
                }
            }
            self.pending.drain(..written);
            if self.dead || !self.pending.is_empty() {
                return;
            }
        }
    }

    /// Exit-path flush: briefly blocking with a timeout so the
    /// `shutdown`/shed responses reach well-behaved clients before
    /// their sockets close.
    fn final_flush(&mut self) {
        let _ = self.stream.set_nonblocking(false);
        let _ = self.stream.set_write_timeout(Some(Duration::from_secs(2)));
        let outbox = std::mem::take(&mut *self.shared.outbox.lock().expect("no poisoning"));
        let _ = self.stream.write_all(&self.pending);
        let _ = self.stream.write_all(&outbox);
        let _ = self.stream.flush();
    }
}

/// A running daemon. Dropping it does **not** stop it — call
/// [`Server::stop`] (or send the `shutdown` op) and then
/// [`Server::wait`].
pub struct Server {
    local: SocketAddr,
    scheduler: Arc<Scheduler>,
    atlas: Arc<AtlasService>,
    ctl: Arc<Control>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Binds, starts the scheduler, the event loop, and the shutdown
    /// supervisor, and returns.
    ///
    /// # Errors
    ///
    /// Propagates bind, self-pipe, and grants-journal failures.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local = listener.local_addr()?;
        let scheduler = Arc::new(Scheduler::start(cfg.scheduler)?);
        let atlas = cfg.atlas;
        let ctl = Arc::new(Control::new());
        let (waker, wake_rx) = reactor::waker()?;
        let waker = Arc::new(waker);
        let event = {
            let scheduler = Arc::clone(&scheduler);
            let atlas = Arc::clone(&atlas);
            let ctl = Arc::clone(&ctl);
            let waker = Arc::clone(&waker);
            std::thread::spawn(move || {
                event_loop(&listener, &scheduler, &atlas, &ctl, &waker, &wake_rx);
            })
        };
        let supervisor = {
            let scheduler = Arc::clone(&scheduler);
            let ctl = Arc::clone(&ctl);
            let waker = Arc::clone(&waker);
            std::thread::spawn(move || {
                ctl.await_shutdown();
                // Drain with the event loop still flushing: every shed
                // response lands in an outbox and goes out before exit.
                scheduler.stop();
                ctl.exit.store(true, Ordering::Release);
                waker.wake();
            })
        };
        Ok(Server {
            local,
            scheduler,
            atlas,
            ctl,
            threads: Mutex::new(vec![event, supervisor]),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.local
    }

    /// The scheduler, for embedders that mix wire and direct submission.
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The atlas service behind `atlas_lookup`, for embedders and tests
    /// inspecting hit/miss counters.
    #[must_use]
    pub fn atlas(&self) -> &AtlasService {
        &self.atlas
    }

    /// Stops accepting, drains the scheduler (resident queries get one
    /// more slice and are shed with resume tokens), flushes, and joins
    /// both service threads. Idempotent.
    pub fn stop(&self) {
        self.ctl.request_shutdown();
        self.wait();
    }

    /// Blocks until the daemon has been stopped (by [`Server::stop`] or
    /// a `shutdown` request).
    pub fn wait(&self) {
        let handles: Vec<_> = self
            .threads
            .lock()
            .expect("no poisoning")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn event_loop(
    listener: &TcpListener,
    scheduler: &Arc<Scheduler>,
    atlas: &Arc<AtlasService>,
    ctl: &Arc<Control>,
    waker: &Arc<Waker>,
    wake_rx: &WakeReceiver,
) {
    let _ = listener.set_nonblocking(true);
    let mut conns: Vec<Conn> = Vec::new();
    let mut fds: Vec<PollFd> = Vec::new();
    loop {
        if ctl.exit.load(Ordering::Acquire) {
            break;
        }
        fds.clear();
        fds.push(PollFd::new(wake_rx.fd(), POLLIN));
        let accepting = !ctl.draining.load(Ordering::Acquire);
        if accepting {
            fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
        }
        let base = fds.len();
        for conn in &conns {
            let buffered = conn.buffered();
            let mut events = 0i16;
            if !conn.eof && buffered < HIGH_WATER {
                events |= POLLIN;
            }
            if buffered > 0 {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
        }
        if reactor::wait(&mut fds, POLL_TICK_MS).is_err() {
            // poll(2) itself failing (ENOMEM) leaves no way to serve;
            // treat it as a shutdown request.
            ctl.request_shutdown();
            continue;
        }
        if fds[0].wants_read() {
            wake_rx.drain();
        }
        if accepting && fds[1].wants_read() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        conns.push(Conn::new(stream, Arc::clone(waker)));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        }
        // Connections accepted this round sit past the polled prefix
        // and are served on the next pass.
        let polled = fds.len() - base;
        for (i, conn) in conns.iter_mut().enumerate().take(polled) {
            let pfd = &fds[base + i];
            if pfd.events & POLLIN != 0 && pfd.wants_read() {
                conn.read_ready(scheduler, atlas, ctl);
            }
        }
        // Opportunistic flush for every connection: cheap when empty,
        // and it picks up outbox pushes that arrived between polls.
        for conn in &mut conns {
            conn.flush();
        }
        let mut i = 0;
        while i < conns.len() {
            if conns[i].finished() {
                conns[i].shared.closed.store(true, Ordering::Release);
                conns.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
    for conn in &mut conns {
        conn.final_flush();
        conn.shared.closed.store(true, Ordering::Release);
    }
}

fn handle_line(
    raw: &[u8],
    sink: &Arc<ConnShared>,
    scheduler: &Arc<Scheduler>,
    atlas: &Arc<AtlasService>,
    ctl: &Arc<Control>,
) {
    let Ok(text) = std::str::from_utf8(raw) else {
        sink.push_line(&error_response(
            0,
            "bad_request",
            "request line is not valid UTF-8",
            None,
            None,
        ));
        return;
    };
    let line = text.trim();
    if line.is_empty() {
        return;
    }
    match protocol::parse_request(line) {
        Err(BadRequest { id, reason }) => {
            sink.push_line(&error_response(id, "bad_request", &reason, None, None));
        }
        Ok(request) => dispatch(request, scheduler, atlas, ctl, sink),
    }
}

/// Submits solver work, wiring streaming and (for atlas fall-throughs)
/// response relabeling into the connection outbox.
fn submit(
    scheduler: &Arc<Scheduler>,
    sink: &Arc<ConnShared>,
    spec: QuerySpec,
    stream: bool,
    relabel: bool,
) {
    let finish = {
        let sink = Arc::clone(sink);
        Box::new(move |line: String| {
            if relabel {
                sink.push_line(&relabel_live_response(&line));
            } else {
                sink.push_line(&line);
            }
        })
    };
    if stream {
        let sink = Arc::clone(sink);
        scheduler.submit_with_progress(
            spec,
            Box::new(move |frame: String| {
                if relabel {
                    sink.push_line(&relabel_live_response(&frame));
                } else {
                    sink.push_line(&frame);
                }
            }),
            finish,
        );
    } else {
        scheduler.submit(spec, finish);
    }
}

fn dispatch(
    request: Request,
    scheduler: &Arc<Scheduler>,
    atlas: &Arc<AtlasService>,
    ctl: &Arc<Control>,
    sink: &Arc<ConnShared>,
) {
    let (spec, stream, relabel) = match request {
        Request::Grant {
            id,
            tenant,
            evals,
            weight,
        } => {
            if let Some(evals) = evals {
                scheduler.grant(&tenant, evals);
            }
            if let Some(weight) = weight {
                scheduler.set_weight(&tenant, weight);
            }
            let t = scheduler.registry().get_or_create(&tenant);
            // The echoed name passes through `sanitize` like every
            // free-text field: a hostile embedder-registered name must
            // not be able to spoof response fields.
            sink.push_line(&format!(
                "{{\"id\":{id},\"ok\":1,\"op\":\"grant\",\"tenant\":\"{}\",\
                 \"granted\":{},\"weight\":{}}}",
                protocol::sanitize(&tenant),
                t.pool().granted(),
                t.weight()
            ));
            return;
        }
        Request::Stats { id } => {
            let rows: Vec<String> = scheduler
                .tenant_rows()
                .iter()
                .map(protocol::render_tenant_row)
                .collect();
            sink.push_line(&format!(
                "{{\"id\":{id},\"ok\":1,\"op\":\"stats\",\"resident\":{},\
                 \"atlas_hits\":{},\"atlas_misses\":{},\"tenants\":[{}]}}",
                scheduler.resident(),
                atlas.hits(),
                atlas.misses(),
                rows.join(",")
            ));
            return;
        }
        Request::Shutdown { id } => {
            sink.push_line(&format!("{{\"id\":{id},\"ok\":1,\"op\":\"shutdown\"}}"));
            ctl.request_shutdown();
            return;
        }
        Request::AtlasLookup {
            id,
            tenant,
            concept,
            alpha,
            graph,
            cost_model,
            resume,
            deadline_ms,
            stream,
        } => {
            // Fresh queries may hit the corpus; a resume token means a
            // live fall-through is already in flight — continue it.
            if resume.is_none() {
                if let Some(line) = atlas.try_answer(id, concept, &graph, alpha, cost_model) {
                    sink.push_line(&line);
                    return;
                }
            }
            (
                QuerySpec {
                    id,
                    tenant,
                    work: Work::Check {
                        concept,
                        graph,
                        alpha,
                        cost_model,
                    },
                    resume,
                    deadline_ms,
                },
                stream,
                true,
            )
        }
        Request::Check {
            id,
            tenant,
            concept,
            alpha,
            graph,
            cost_model,
            resume,
            deadline_ms,
            stream,
        } => (
            QuerySpec {
                id,
                tenant,
                work: Work::Check {
                    concept,
                    graph,
                    alpha,
                    cost_model,
                },
                resume,
                deadline_ms,
            },
            stream,
            false,
        ),
        Request::BestResponse {
            id,
            tenant,
            agent,
            alpha,
            graph,
            cost_model,
            resume,
            deadline_ms,
            stream,
        } => (
            QuerySpec {
                id,
                tenant,
                work: Work::BestResponse {
                    agent,
                    graph,
                    alpha,
                    cost_model,
                },
                resume,
                deadline_ms,
            },
            stream,
            false,
        ),
        Request::Trajectory {
            id,
            tenant,
            alpha,
            graph,
            rounds,
            cost_model,
            resume,
            deadline_ms,
            stream,
        } => (
            QuerySpec {
                id,
                tenant,
                work: Work::Trajectory {
                    graph,
                    alpha,
                    rounds,
                    cost_model,
                },
                resume,
                deadline_ms,
            },
            stream,
            false,
        ),
        Request::Dynamics {
            id,
            tenant,
            concept,
            alpha,
            graph,
            steps,
            cost_model,
            resume,
            deadline_ms,
            stream,
        } => (
            QuerySpec {
                id,
                tenant,
                work: Work::Dynamics {
                    concept,
                    graph,
                    alpha,
                    steps,
                    cost_model,
                },
                resume,
                deadline_ms,
            },
            stream,
            false,
        ),
    };
    submit(scheduler, sink, spec, stream, relabel);
}
