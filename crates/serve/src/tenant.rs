//! Per-tenant fair-share accounting: one long-lived
//! [`BudgetPool`] per tenant name, shared by every query that names the
//! tenant.
//!
//! The registry is the daemon's admission-control substrate: the
//! scheduler checks a job's pool before every slice and sheds with zero
//! work once it drains or expires, so one tenant exhausting its grant
//! never slows another tenant's queries — the multi-tenant
//! generalization of [`ExecPolicy::batch_budget`]'s single anonymous
//! batch pool.
//!
//! Alongside the pool each tenant carries a scheduling **weight**
//! (default 1): the deficit round-robin dispatcher in
//! [`crate::scheduler`] refills a tenant's slice deficit by its weight,
//! so a weight-3 tenant receives three slices for every one a weight-1
//! tenant gets while both have queued work. The pool bounds *how much*
//! a tenant may compute in total; the weight shapes *how soon* it gets
//! its share when the daemon is saturated.
//!
//! [`ExecPolicy::batch_budget`]: bncg_core::ExecPolicy::batch_budget

use bncg_core::BudgetPool;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One tenant: a name, its lifetime budget pool, and its scheduling
/// weight.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    pool: BudgetPool,
    weight: AtomicU64,
}

impl Tenant {
    /// The tenant's registered name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's budget pool (admission, metering, top-ups).
    #[must_use]
    pub fn pool(&self) -> &BudgetPool {
        &self.pool
    }

    /// The tenant's deficit round-robin weight (≥ 1).
    #[must_use]
    pub fn weight(&self) -> u64 {
        self.weight.load(Ordering::Relaxed)
    }

    /// Sets the weight; zero is clamped to 1 so a tenant with queued
    /// work always makes progress.
    pub fn set_weight(&self, weight: u64) {
        self.weight.store(weight.max(1), Ordering::Relaxed);
    }
}

/// A point-in-time accounting row from [`TenantRegistry::snapshot`].
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Lifetime evaluations granted.
    pub granted: u64,
    /// Lifetime evaluations consumed.
    pub used: u64,
    /// Deficit round-robin weight.
    pub weight: u64,
}

/// The daemon's tenant table. Tenants materialize on first use with the
/// registry's default grant; [`TenantRegistry::grant`] funds them
/// explicitly.
#[derive(Debug)]
pub struct TenantRegistry {
    default_grant: u64,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
}

impl TenantRegistry {
    /// A registry whose implicitly created tenants start with
    /// `default_grant` evaluations.
    #[must_use]
    pub fn new(default_grant: u64) -> Self {
        TenantRegistry {
            default_grant,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    fn fresh(name: &str, grant: u64) -> Arc<Tenant> {
        Arc::new(Tenant {
            name: name.to_string(),
            pool: BudgetPool::new(grant),
            weight: AtomicU64::new(1),
        })
    }

    /// The tenant named `name`, created with the default grant if it
    /// does not exist yet.
    pub fn get_or_create(&self, name: &str) -> Arc<Tenant> {
        let mut map = self.tenants.lock().expect("no poisoning");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Self::fresh(name, self.default_grant)),
        )
    }

    /// Funds `name` with `evals` evaluations: an unknown tenant is
    /// created with **exactly** that grant (not default + `evals`, so
    /// operators can provision tight pools below a generous default); an
    /// existing tenant is topped up. Returns the tenant's new total
    /// grant.
    pub fn grant(&self, name: &str, evals: u64) -> u64 {
        let mut map = self.tenants.lock().expect("no poisoning");
        match map.get(name) {
            Some(tenant) => tenant.pool.top_up(evals),
            None => {
                map.insert(name.to_string(), Self::fresh(name, evals));
                evals
            }
        }
    }

    /// Sets `name`'s scheduling weight (clamped to ≥ 1), creating the
    /// tenant with the default grant if needed. Returns the weight as
    /// stored.
    pub fn set_weight(&self, name: &str, weight: u64) -> u64 {
        let tenant = self.get_or_create(name);
        tenant.set_weight(weight);
        tenant.weight()
    }

    /// Accounting rows for every registered tenant, sorted by name (a
    /// deterministic order for the `stats` response).
    #[must_use]
    pub fn snapshot(&self) -> Vec<TenantStats> {
        let map = self.tenants.lock().expect("no poisoning");
        let mut rows: Vec<TenantStats> = map
            .values()
            .map(|t| TenantStats {
                name: t.name.clone(),
                granted: t.pool.granted(),
                used: t.pool.used(),
                weight: t.weight(),
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_creates_exact_and_tops_up() {
        let reg = TenantRegistry::new(1000);
        assert_eq!(reg.grant("alice", 50), 50, "explicit create, no default");
        assert_eq!(reg.grant("alice", 25), 75);
        let implicit = reg.get_or_create("bob");
        assert_eq!(implicit.pool().granted(), 1000);
        assert_eq!(reg.grant("bob", 1), 1001);
        // get_or_create returns the same pool, not a fresh one.
        reg.get_or_create("alice").pool().charge(10);
        let rows = reg.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "alice");
        assert_eq!(rows[0].used, 10);
        assert_eq!(rows[0].granted, 75);
    }

    #[test]
    fn weights_default_to_one_and_clamp_at_one() {
        let reg = TenantRegistry::new(100);
        assert_eq!(reg.get_or_create("a").weight(), 1);
        assert_eq!(reg.set_weight("a", 7), 7);
        assert_eq!(reg.get_or_create("a").weight(), 7);
        assert_eq!(reg.set_weight("a", 0), 1, "zero weight clamps to 1");
        // set_weight on an unknown tenant creates it with the default
        // grant — weight and funding are orthogonal controls.
        assert_eq!(reg.set_weight("new", 3), 3);
        assert_eq!(reg.get_or_create("new").pool().granted(), 100);
        let rows = reg.snapshot();
        assert_eq!(rows.iter().find(|r| r.name == "new").unwrap().weight, 3);
    }
}
