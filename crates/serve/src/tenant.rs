//! Per-tenant fair-share accounting: one long-lived
//! [`BudgetPool`] per tenant name, shared by every query that names the
//! tenant.
//!
//! The registry is the daemon's admission-control substrate: the
//! scheduler checks a job's pool before every slice and sheds with zero
//! work once it drains or expires, so one tenant exhausting its grant
//! never slows another tenant's queries — the multi-tenant
//! generalization of [`ExecPolicy::batch_budget`]'s single anonymous
//! batch pool.
//!
//! [`ExecPolicy::batch_budget`]: bncg_core::ExecPolicy::batch_budget

use bncg_core::BudgetPool;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One tenant: a name and its lifetime budget pool.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    pool: BudgetPool,
}

impl Tenant {
    /// The tenant's registered name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's budget pool (admission, metering, top-ups).
    #[must_use]
    pub fn pool(&self) -> &BudgetPool {
        &self.pool
    }
}

/// A point-in-time accounting row from [`TenantRegistry::snapshot`].
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Lifetime evaluations granted.
    pub granted: u64,
    /// Lifetime evaluations consumed.
    pub used: u64,
}

/// The daemon's tenant table. Tenants materialize on first use with the
/// registry's default grant; [`TenantRegistry::grant`] funds them
/// explicitly.
#[derive(Debug)]
pub struct TenantRegistry {
    default_grant: u64,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
}

impl TenantRegistry {
    /// A registry whose implicitly created tenants start with
    /// `default_grant` evaluations.
    #[must_use]
    pub fn new(default_grant: u64) -> Self {
        TenantRegistry {
            default_grant,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// The tenant named `name`, created with the default grant if it
    /// does not exist yet.
    pub fn get_or_create(&self, name: &str) -> Arc<Tenant> {
        let mut map = self.tenants.lock().expect("no poisoning");
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| {
            Arc::new(Tenant {
                name: name.to_string(),
                pool: BudgetPool::new(self.default_grant),
            })
        }))
    }

    /// Funds `name` with `evals` evaluations: an unknown tenant is
    /// created with **exactly** that grant (not default + `evals`, so
    /// operators can provision tight pools below a generous default); an
    /// existing tenant is topped up. Returns the tenant's new total
    /// grant.
    pub fn grant(&self, name: &str, evals: u64) -> u64 {
        let mut map = self.tenants.lock().expect("no poisoning");
        match map.get(name) {
            Some(tenant) => tenant.pool.top_up(evals),
            None => {
                map.insert(
                    name.to_string(),
                    Arc::new(Tenant {
                        name: name.to_string(),
                        pool: BudgetPool::new(evals),
                    }),
                );
                evals
            }
        }
    }

    /// Accounting rows for every registered tenant, sorted by name (a
    /// deterministic order for the `stats` response).
    #[must_use]
    pub fn snapshot(&self) -> Vec<TenantStats> {
        let map = self.tenants.lock().expect("no poisoning");
        let mut rows: Vec<TenantStats> = map
            .values()
            .map(|t| TenantStats {
                name: t.name.clone(),
                granted: t.pool.granted(),
                used: t.pool.used(),
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_creates_exact_and_tops_up() {
        let reg = TenantRegistry::new(1000);
        assert_eq!(reg.grant("alice", 50), 50, "explicit create, no default");
        assert_eq!(reg.grant("alice", 25), 75);
        let implicit = reg.get_or_create("bob");
        assert_eq!(implicit.pool().granted(), 1000);
        assert_eq!(reg.grant("bob", 1), 1001);
        // get_or_create returns the same pool, not a fresh one.
        reg.get_or_create("alice").pool().charge(10);
        let rows = reg.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "alice");
        assert_eq!(rows[0].used, 10);
        assert_eq!(rows[0].granted, 75);
    }
}
