//! End-to-end daemon tests: a real TCP server on an ephemeral port,
//! concurrent clients from multiple tenants, and the two contracts the
//! serving layer exists for —
//!
//! 1. **exactness through the scheduler**: every verdict delivered over
//!    the wire equals a direct in-process `Solver`/dynamics run on the
//!    same instance, slicing and interleaving notwithstanding;
//! 2. **fair-share isolation**: a tenant draining its budget pool gets
//!    shed (with a resume token), while another tenant's concurrent
//!    queries all complete.

use bncg_core::jsonio;
use bncg_core::solver::{Solver, StabilityQuery, Verdict};
use bncg_core::{Alpha, Concept};
use bncg_dynamics::round_robin;
use bncg_graph::{generators, Graph};
use bncg_serve::protocol::{pack_edge, render_edges, unpack_edge};
use bncg_serve::scheduler::SchedulerConfig;
use bncg_serve::server::{Server, ServerConfig};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One client connection: send request lines, collect response lines
/// keyed by id (responses arrive in completion order, not send order).
struct Client {
    sock: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let sock = TcpStream::connect(server.addr()).expect("connect");
        let reader = BufReader::new(sock.try_clone().expect("clone"));
        Client { sock, reader }
    }

    fn send(&mut self, line: &str) {
        self.sock.write_all(line.as_bytes()).expect("send");
        self.sock.write_all(b"\n").expect("send");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim().to_string()
    }

    /// Receives `count` responses and indexes them by id.
    fn collect(&mut self, count: usize) -> HashMap<u64, String> {
        let mut by_id = HashMap::new();
        for _ in 0..count {
            let line = self.recv();
            let id = jsonio::u64_field(&line, "id").expect("response id");
            assert!(by_id.insert(id, line).is_none(), "duplicate response id");
        }
        by_id
    }
}

fn check_line(id: u64, tenant: &str, concept: &str, alpha: &str, g: &Graph) -> String {
    format!(
        "{{\"id\":{id},\"op\":\"check\",\"tenant\":\"{tenant}\",\"concept\":\"{concept}\",\
         \"alpha\":\"{alpha}\",\"n\":{},\"edges\":{}}}",
        g.n(),
        render_edges(g)
    )
}

/// Splits the flat per-tenant row objects out of a `stats` response's
/// `"tenants":[…]` array (rows are escape-free and unnested, so
/// brace-matching is trivial).
fn tenant_rows(stats: &str) -> Vec<String> {
    let marker = "\"tenants\":[";
    let Some(open) = stats.find(marker) else {
        return Vec::new();
    };
    let body = &stats[open + marker.len()..];
    let end = body.find(']').unwrap_or(body.len());
    let mut rows = Vec::new();
    let mut rest = &body[..end];
    while let Some(lb) = rest.find('{') {
        let rb = rest[lb..].find('}').expect("flat row") + lb;
        rows.push(rest[lb..=rb].to_string());
        rest = &rest[rb + 1..];
    }
    rows
}

fn small_server() -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        scheduler: SchedulerConfig {
            workers: 2,
            slice: 256,
            default_grant: u64::MAX,
            journal: None,
        },
        ..ServerConfig::default()
    })
    .expect("bind")
}

#[test]
fn concurrent_mixed_queries_match_direct_runs() {
    let server = small_server();
    let alpha = Alpha::integer(2).unwrap();
    let mut alice = Client::connect(&server);
    let mut bob = Client::connect(&server);

    // Alice: a batch of checks across the concept ladder plus a C40 BNE
    // scan that needs multiple 256-eval slices.
    let instances: Vec<(u64, Concept, Alpha, Graph)> = vec![
        (1, Concept::Ps, alpha, generators::path(6)),
        (2, Concept::Re, alpha, generators::path(6)),
        (3, Concept::Bne, alpha, generators::star(12)),
        (
            4,
            Concept::Bne,
            Alpha::integer(370).unwrap(),
            generators::cycle(40),
        ),
        (5, Concept::KBse(2), alpha, generators::cycle(6)),
    ];
    for (id, concept, a, g) in &instances {
        alice.send(&check_line(
            *id,
            "alice",
            &concept.token(),
            &format!("{a}"),
            g,
        ));
    }
    // Bob: a trajectory and a best response, interleaved with Alice's
    // checks on the same two workers.
    let start = generators::path(9);
    bob.send(&format!(
        "{{\"id\":10,\"op\":\"trajectory\",\"tenant\":\"bob\",\"alpha\":\"2\",\
         \"n\":{},\"edges\":{},\"rounds\":100}}",
        start.n(),
        render_edges(&start)
    ));
    let br_graph = generators::path(12);
    bob.send(&format!(
        "{{\"id\":11,\"op\":\"best_response\",\"tenant\":\"bob\",\"agent\":0,\
         \"alpha\":\"2\",\"n\":{},\"edges\":{}}}",
        br_graph.n(),
        render_edges(&br_graph)
    ));

    let alice_responses = alice.collect(instances.len());
    let bob_responses = bob.collect(2);

    // Every check verdict equals the direct solver run.
    for (id, concept, a, g) in &instances {
        let line = &alice_responses[id];
        assert_eq!(jsonio::u64_field(line, "ok"), Some(1), "{line}");
        let direct = Solver::default()
            .check(&StabilityQuery::new(*concept, g, *a))
            .unwrap();
        let expect = match direct {
            Verdict::Stable { .. } => "stable",
            Verdict::Unstable { .. } => "unstable",
            Verdict::Exhausted { .. } => unreachable!("unbudgeted"),
        };
        assert_eq!(
            jsonio::str_field(line, "verdict"),
            Some(expect),
            "id {id}: {line}"
        );
    }
    // The C40 scan (120 priced candidates) cannot fit one 256-slice...
    // it can. But the slice accounting must still be reported.
    assert!(jsonio::u64_field(&alice_responses[&4], "slices").unwrap() >= 1);

    // Bob's trajectory equals the direct round-robin run.
    let line = &bob_responses[&10];
    assert_eq!(jsonio::u64_field(line, "ok"), Some(1), "{line}");
    let direct = round_robin::run(&start, alpha, 100).unwrap();
    assert_eq!(
        jsonio::u64_field(line, "converged"),
        Some(u64::from(direct.converged))
    );
    assert_eq!(jsonio::u64_field(line, "moves"), Some(direct.moves as u64));
    let wire_edges = jsonio::u64_list_field(line, "final_edges").unwrap();
    let wire_graph =
        Graph::from_edges(start.n(), wire_edges.iter().map(|&p| unpack_edge(p))).unwrap();
    assert_eq!(wire_graph, direct.final_graph);

    // Bob's best response found the improving move a path end has.
    let line = &bob_responses[&11];
    assert_eq!(jsonio::u64_field(line, "ok"), Some(1), "{line}");
    assert_eq!(jsonio::u64_field(line, "improving"), Some(1));

    server.stop();
}

#[test]
fn drained_tenant_sheds_while_others_complete() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        scheduler: SchedulerConfig {
            workers: 2,
            slice: 64,
            default_grant: u64::MAX,
            journal: None,
        },
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut ops = Client::connect(&server);
    let mut mallory = Client::connect(&server);
    let mut alice = Client::connect(&server);

    // Fund mallory with a pool far below the C40 scan's 120 evals.
    ops.send("{\"id\":1,\"op\":\"grant\",\"tenant\":\"mallory\",\"evals\":50}");
    let line = ops.recv();
    assert_eq!(jsonio::u64_field(&line, "ok"), Some(1), "{line}");
    assert_eq!(jsonio::u64_field(&line, "granted"), Some(50));

    let big = generators::cycle(40);
    let alpha_big = "370";
    mallory.send(&check_line(20, "mallory", "bne", alpha_big, &big));
    for id in 30..35 {
        alice.send(&check_line(id, "alice", "bne", alpha_big, &big));
    }

    // Mallory is shed with a resume token…
    let line = mallory.recv();
    assert_eq!(jsonio::u64_field(&line, "ok"), Some(0), "{line}");
    assert_eq!(jsonio::str_field(&line, "error"), Some("shed"));
    let token = jsonio::object_field(&line, "resume")
        .expect("shed carries the frontier")
        .to_string();

    // …while every one of Alice's identical queries completes exactly.
    for (_, line) in alice.collect(5) {
        assert_eq!(jsonio::u64_field(&line, "ok"), Some(1), "{line}");
        assert_eq!(jsonio::str_field(&line, "verdict"), Some("stable"));
        assert_eq!(jsonio::u64_field(&line, "evals"), Some(120));
    }

    // An operator top-up plus the shed token finishes Mallory's scan
    // with the cumulative eval count intact — shed work is suspended,
    // never lost.
    ops.send("{\"id\":2,\"op\":\"grant\",\"tenant\":\"mallory\",\"evals\":1000}");
    ops.recv();
    mallory.send(&format!(
        "{{\"id\":21,\"op\":\"check\",\"tenant\":\"mallory\",\"concept\":\"bne\",\
         \"alpha\":\"370\",\"n\":40,\"edges\":{},\"resume\":{token}}}",
        render_edges(&big)
    ));
    let line = mallory.recv();
    assert_eq!(jsonio::u64_field(&line, "ok"), Some(1), "{line}");
    assert_eq!(jsonio::str_field(&line, "verdict"), Some("stable"));
    assert_eq!(jsonio::u64_field(&line, "evals"), Some(120));

    // Stats reflect both tenants' accounting.
    ops.send("{\"id\":3,\"op\":\"stats\"}");
    let line = ops.recv();
    assert_eq!(jsonio::u64_field(&line, "ok"), Some(1), "{line}");
    assert!(line.contains("\"tenant\":\"mallory\""), "{line}");
    assert!(line.contains("\"tenant\":\"alice\""), "{line}");

    server.stop();
}

#[test]
fn malformed_lines_get_structured_errors_and_shutdown_drains() {
    let server = small_server();
    let mut client = Client::connect(&server);

    client.send("this is not json");
    let line = client.recv();
    assert_eq!(jsonio::u64_field(&line, "ok"), Some(0));
    assert_eq!(jsonio::str_field(&line, "error"), Some("bad_request"));

    client.send("{\"id\":8,\"op\":\"check\",\"concept\":\"bogus\",\"alpha\":\"2\",\"n\":4}");
    let line = client.recv();
    assert_eq!(jsonio::u64_field(&line, "id"), Some(8));
    assert_eq!(jsonio::str_field(&line, "error"), Some("bad_request"));

    // A graph over the node ceiling is refused before any work happens.
    client.send(&format!(
        "{{\"id\":9,\"op\":\"check\",\"concept\":\"re\",\"alpha\":\"1\",\"n\":{}}}",
        bncg_serve::protocol::MAX_N + 1
    ));
    let line = client.recv();
    assert_eq!(jsonio::str_field(&line, "error"), Some("bad_request"));

    client.send("{\"id\":99,\"op\":\"shutdown\"}");
    let line = client.recv();
    assert_eq!(jsonio::u64_field(&line, "ok"), Some(1));
    server.wait();

    // The daemon is gone: new queries cannot reach it.
    assert!(
        TcpStream::connect(server.addr())
            .map(|mut s| {
                // Accept-loop raced shut: even if the OS still accepts,
                // writes on the dead daemon see EOF promptly.
                let _ = s.write_all(b"{\"id\":1,\"op\":\"stats\"}\n");
                let mut buf = String::new();
                BufReader::new(s)
                    .read_line(&mut buf)
                    .map(|n| n == 0)
                    .unwrap_or(true)
            })
            .unwrap_or(true),
        "daemon must not answer after shutdown"
    );
}

#[test]
fn deadline_zero_answers_promptly() {
    let server = small_server();
    let mut client = Client::connect(&server);
    let big = generators::cycle(40);
    client.send(&format!(
        "{{\"id\":40,\"op\":\"check\",\"tenant\":\"dl\",\"concept\":\"bne\",\
         \"alpha\":\"370\",\"n\":40,\"edges\":{},\"deadline_ms\":0}}",
        render_edges(&big)
    ));
    let line = client.recv();
    assert_eq!(jsonio::u64_field(&line, "ok"), Some(0), "{line}");
    assert_eq!(jsonio::str_field(&line, "error"), Some("deadline"));
    server.stop();
}

#[test]
fn oversized_line_tail_is_never_parsed_as_requests() {
    // Regression: the old front end read a request line through a
    // `take(MAX_LINE)` cap and left the oversized line's tail in the
    // stream, where it was parsed as follow-on requests — a client
    // (or proxy) could smuggle requests inside an overlong line. The
    // readiness loop answers `bad_request` exactly once and discards
    // through the terminating newline.
    let server = small_server();
    let mut client = Client::connect(&server);

    let mut line = vec![b'x'; bncg_serve::server::MAX_LINE + 64];
    // A perfectly valid request sits in the tail beyond the cap; it
    // must never be answered.
    line.extend_from_slice(b"{\"id\":666,\"op\":\"stats\"}");
    line.push(b'\n');
    client.sock.write_all(&line).expect("send oversized");

    client.send("{\"id\":700,\"op\":\"stats\"}");
    let first = client.recv();
    assert_eq!(jsonio::u64_field(&first, "id"), Some(0), "{first}");
    assert_eq!(jsonio::str_field(&first, "error"), Some("bad_request"));
    let second = client.recv();
    assert_eq!(
        jsonio::u64_field(&second, "id"),
        Some(700),
        "the smuggled id 666 must not be answered: {second}"
    );
    assert_eq!(jsonio::u64_field(&second, "ok"), Some(1));

    server.stop();
}

#[test]
fn hostile_tenant_names_are_rejected_at_parse() {
    let server = small_server();
    let mut client = Client::connect(&server);
    // A name that would break the escape-free response format never
    // reaches the registry: the restricted alphabet rejects it.
    client.send("{\"id\":12,\"op\":\"grant\",\"tenant\":\"e vil\",\"evals\":5}");
    let line = client.recv();
    assert_eq!(jsonio::u64_field(&line, "id"), Some(12));
    assert_eq!(jsonio::str_field(&line, "error"), Some("bad_request"));
    // A grant carrying neither evals nor weight is meaningless.
    client.send("{\"id\":13,\"op\":\"grant\",\"tenant\":\"ok\"}");
    let line = client.recv();
    assert_eq!(jsonio::str_field(&line, "error"), Some("bad_request"));
    server.stop();
}

#[test]
fn weighted_round_robin_isolates_light_tenant_over_the_wire() {
    // One worker, a tiny quantum, and a heavy tenant flooding the
    // daemon with multi-slice scans: a light tenant's single cheap
    // query must complete while the flood is still mostly resident.
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        scheduler: SchedulerConfig {
            workers: 1,
            slice: 8,
            default_grant: u64::MAX,
            journal: None,
        },
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = Client::connect(&server);

    // One write delivers the whole batch: 100 multi-slice heavy scans,
    // then the light query — so the light query is enqueued while the
    // flood is resident, regardless of wire latencies. Responses come
    // back in completion order.
    let big = generators::cycle(40);
    let mut batch = String::new();
    for id in 100..200 {
        batch.push_str(&check_line(id, "heavy", "bne", "370", &big));
        batch.push('\n');
    }
    // P5 at α = 2 is the quickstart instance: unstable, one slice.
    batch.push_str(&check_line(7, "light", "ps", "2", &generators::path(5)));
    batch.push('\n');
    client.sock.write_all(batch.as_bytes()).expect("send batch");

    let mut light_position = None;
    for position in 0..101 {
        let line = client.recv();
        let id = jsonio::u64_field(&line, "id").expect("id");
        assert_eq!(jsonio::u64_field(&line, "ok"), Some(1), "{line}");
        if id == 7 {
            assert_eq!(jsonio::str_field(&line, "verdict"), Some("unstable"));
            light_position = Some(position);
        } else {
            // Fairness reorders; it never drops or corrupts.
            assert_eq!(jsonio::str_field(&line, "verdict"), Some("stable"));
            assert_eq!(jsonio::u64_field(&line, "evals"), Some(120));
        }
    }
    // FIFO would answer the light query dead last (position 100);
    // round-robin dispatch answers it within one round of the tenants
    // active at its enqueue, i.e. near the front of the stream.
    let position = light_position.expect("light response");
    assert!(
        position <= 20,
        "light query answered at completion position {position} of 101 \
         — the heavy flood delayed it like FIFO would"
    );

    // The stats rows expose the scheduling-side accounting.
    client.send("{\"id\":8,\"op\":\"stats\"}");
    let stats = client.recv();
    let tenants = tenant_rows(&stats);
    let heavy_row = tenants
        .iter()
        .find(|r| jsonio::str_field(r, "tenant") == Some("heavy"))
        .expect("heavy row");
    assert_eq!(jsonio::u64_field(heavy_row, "weight"), Some(1), "{stats}");
    assert_eq!(jsonio::u64_field(heavy_row, "used"), Some(12000), "{stats}");
    assert!(
        jsonio::u64_field(heavy_row, "waited_ms").is_some(),
        "{stats}"
    );
    server.stop();
}

#[test]
fn streaming_emits_progress_frames_then_the_identical_final_line() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        scheduler: SchedulerConfig {
            workers: 1,
            slice: 16,
            default_grant: u64::MAX,
            journal: None,
        },
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = Client::connect(&server);
    let start = generators::path(9);
    let request = format!(
        "{{\"id\":31,\"op\":\"trajectory\",\"tenant\":\"s\",\"alpha\":\"2\",\
         \"n\":{},\"edges\":{},\"rounds\":100",
        start.n(),
        render_edges(&start)
    );

    client.send(&format!("{request},\"stream\":1}}"));
    let mut frames = Vec::new();
    let streamed_final = loop {
        let line = client.recv();
        assert_eq!(jsonio::u64_field(&line, "id"), Some(31), "{line}");
        if jsonio::u64_field(&line, "progress") == Some(1) {
            frames.push(line);
        } else {
            break line;
        }
    };
    assert!(
        !frames.is_empty(),
        "a multi-slice trajectory must emit progress frames"
    );
    let mut last_evals = 0;
    for frame in &frames {
        assert_eq!(jsonio::str_field(frame, "op"), Some("trajectory"));
        assert_eq!(jsonio::u64_field(frame, "ok"), Some(1), "{frame}");
        let evals = jsonio::u64_field(frame, "evals").expect("frame evals");
        assert!(evals > last_evals, "evals must be monotone: {frame}");
        last_evals = evals;
    }
    assert!(
        jsonio::u64_field(&streamed_final, "evals").unwrap() >= last_evals,
        "{streamed_final}"
    );

    // The same request without the flag produces a byte-identical
    // final line: streaming adds visibility, it never perturbs the
    // resume chain.
    client.send(&format!("{request}}}"));
    let plain = client.recv();
    assert_eq!(streamed_final, plain);
    server.stop();
}

#[test]
fn grants_and_weights_survive_a_daemon_restart() {
    let dir = std::env::temp_dir().join(format!("bncg-e2e-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journaled = || {
        Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            scheduler: SchedulerConfig {
                workers: 1,
                slice: 256,
                default_grant: 0,
                journal: Some(dir.clone()),
            },
            ..ServerConfig::default()
        })
        .expect("bind")
    };

    let server = journaled();
    let mut ops = Client::connect(&server);
    ops.send("{\"id\":1,\"op\":\"grant\",\"tenant\":\"alice\",\"evals\":50,\"weight\":3}");
    let line = ops.recv();
    assert_eq!(jsonio::u64_field(&line, "granted"), Some(50), "{line}");
    assert_eq!(jsonio::u64_field(&line, "weight"), Some(3), "{line}");
    ops.send("{\"id\":2,\"op\":\"grant\",\"tenant\":\"alice\",\"evals\":25}");
    let line = ops.recv();
    assert_eq!(jsonio::u64_field(&line, "granted"), Some(75), "{line}");
    server.stop();
    drop(server);

    // A crash mid-append leaves a torn tail; replay must ignore it.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("grants.jsonl"))
            .unwrap();
        f.write_all(b"{\"tenant\":\"mallory\",\"evals\":9999")
            .unwrap();
    }

    let server = journaled();
    let mut ops = Client::connect(&server);
    ops.send("{\"id\":3,\"op\":\"stats\"}");
    let stats = ops.recv();
    let tenants = tenant_rows(&stats);
    let alice = tenants
        .iter()
        .find(|r| jsonio::str_field(r, "tenant") == Some("alice"))
        .unwrap_or_else(|| panic!("alice must replay from the journal: {stats}"));
    assert_eq!(jsonio::u64_field(alice, "granted"), Some(75), "{stats}");
    assert_eq!(jsonio::u64_field(alice, "weight"), Some(3), "{stats}");
    assert!(
        !tenants
            .iter()
            .any(|r| jsonio::str_field(r, "tenant") == Some("mallory")),
        "torn tail must not replay: {stats}"
    );
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn packed_edge_layout_is_stable() {
    // The wire format commits to (u << 32) | v — a client-visible
    // contract documented in docs/PROTOCOL.md.
    assert_eq!(pack_edge(1, 2), 4294967298);
    assert_eq!(unpack_edge(4294967298), (1, 2));
}
