//! The paper's headline message as a runnable experiment: the worst
//! equilibrium network improves as agents are allowed to cooperate more.
//!
//! For each solution concept the example reports the exhaustive
//! Price of Anarchy over all trees on `n` nodes for a sweep of edge
//! prices, plus the paper's bound for that concept.
//!
//! Run with `cargo run --release --example cooperation_ladder`.

use bncg::analysis::empirical;
use bncg::core::{bounds, Alpha, Concept};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 9;
    let alphas = [1i64, 2, 4, 8, 16, 32, 64];
    println!("Exhaustive tree PoA on n = {n} agents (rows: α, columns: concept)\n");
    println!(
        "{:>5}  {:>8} {:>8} {:>8} {:>8} {:>8}   {:>12} {:>12}",
        "α", "PS", "BSwE", "BGE", "BNE", "3-BSE", "2+2log₂α", "min{√α,n/√α}"
    );
    for v in alphas {
        let alpha = Alpha::integer(v)?;
        let mut cells = Vec::new();
        for concept in [
            Concept::Ps,
            Concept::Bswe,
            Concept::Bge,
            Concept::Bne,
            Concept::KBse(3),
        ] {
            let point = empirical::tree_poa(n, alpha, concept)?;
            cells.push(match point.max_rho {
                Some(rho) => format!("{rho:>8.3}"),
                None => format!("{:>8}", "–"),
            });
        }
        println!(
            "{v:>5}  {}   {:>12.2} {:>12.2}",
            cells.join(" "),
            bounds::theorem_3_6_bound(alpha),
            bounds::ps_poa_envelope(alpha, n),
        );
    }
    println!("\nReading: PoA shrinks monotonically along PS → BGE → BNE → 3-BSE,");
    println!("matching Table 1 of the paper (Θ(min{{√α, n/√α}}) → Θ(log α) → Θ(1)).");
    Ok(())
}
