//! Reproduces Proposition 2.3: the Corbo–Parkes conjecture — that every
//! Nash equilibrium of the unilateral game is pairwise stable in the
//! bilateral game — is **false**.
//!
//! The example searches all small connected graphs and edge assignments
//! for a unilateral NE in which some agent profits from bilaterally
//! dropping an edge she does not own (bilaterally she pays α for it too).
//!
//! Run with `cargo run --release --example disprove_conjecture`.

use bncg::constructions::conjecture::find_ne_not_ps;
use bncg::core::{concepts, Alpha};
use bncg::graph::graph6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alphas: Vec<Alpha> = ["4", "3", "2", "7/2", "5"]
        .iter()
        .map(|s| s.parse())
        .collect::<Result<_, _>>()?;
    println!("searching graphs with up to 5 nodes and all edge assignments …");
    let witness = find_ne_not_ps(5, &alphas)?.expect("Proposition 2.3 guarantees a witness");

    let g = witness.state.graph();
    println!("\ncounterexample found (α = {}):", witness.alpha);
    println!("  graph6: {}", graph6::encode(g)?);
    println!("  edges and owners (unilateral game):");
    for (u, v) in g.edges() {
        println!("    {{{u}, {v}}} owned by {}", witness.state.owner(u, v));
    }
    println!(
        "  unilateral Nash equilibrium: {}",
        witness.state.is_ne(witness.alpha)?
    );
    println!(
        "  bilateral pairwise stability: {}",
        concepts::ps::is_stable(g, witness.alpha)
    );
    println!("  profitable bilateral deviation: {}", witness.removal);
    println!("\nIn the bilateral game both endpoints pay for an edge, so the");
    println!("non-owner can profitably drop it even though the unilateral");
    println!("owner keeps it — exactly the gap the conjecture overlooked.");
    Ok(())
}
