//! Decentralized network formation: agents start from a random tree and
//! keep making improving moves (with the cooperation level of Bilateral
//! Greedy Equilibria) until the network is stable — a simulation of the
//! social-network scenario that motivates the bilateral model.
//!
//! Run with `cargo run --release --example network_formation`.

use bncg::core::{social_cost_ratio, Alpha, Concept};
use bncg::dynamics::{run_with_rng, SelectionRule};
use bncg::graph::{diameter, generators, test_rng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 25;
    let mut rng = test_rng(2023);
    for alpha_s in ["3/2", "4", "12"] {
        let alpha: Alpha = alpha_s.parse()?;
        let start = generators::random_tree(n, &mut rng);
        let before = social_cost_ratio(&start, alpha)?.as_f64();
        let trajectory = run_with_rng(
            &start,
            alpha,
            Concept::Bge,
            SelectionRule::Random,
            50_000,
            &mut rng,
        )?;
        let g = &trajectory.final_graph;
        let after = social_cost_ratio(g, alpha)?.as_f64();
        println!(
            "α = {alpha_s:>4}: {} improving moves, converged = {}",
            trajectory.len(),
            trajectory.converged
        );
        println!(
            "         ρ {before:.3} → {after:.3}; diameter {:?} → {:?}; edges {} → {}",
            diameter(&start),
            diameter(g),
            start.m(),
            g.m()
        );
        // The reached network is certified stable by the exact checker.
        assert!(Concept::Bge.is_stable(g, alpha)?);
    }
    println!("\nGreedy bilateral cooperation reliably lands within a few percent of the optimum —");
    println!("the dynamic counterpart of the paper's Θ(log α) BGE bound at realistic sizes.");
    Ok(())
}
