//! Quickstart: build a network creation game, probe the cooperation
//! ladder, and replay a witness move.
//!
//! Run with `cargo run --release --example quickstart`.

use bncg::core::{delta, Alpha, Concept, Game};
use bncg::graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fifteen agents on a path — the classic bad network: cheap to build,
    // expensive to traverse.
    let alpha = Alpha::integer(3)?;
    let game = Game::new(generators::path(15), alpha);
    println!(
        "path(15) at α = {alpha}: social cost ratio ρ = {:.3}",
        game.social_cost_ratio()?.as_f64()
    );

    // Walk the cooperation ladder: which amount of cooperation is enough
    // for the agents to escape this state?
    for concept in [
        Concept::Re,
        Concept::Bae,
        Concept::Ps,
        Concept::Bswe,
        Concept::Bge,
        Concept::Bne,
        Concept::KBse(3),
    ] {
        match game.find_violation(concept)? {
            None => println!("{concept:>6}: stable — this concept tolerates the path"),
            Some(mv) => {
                // Every witness is replayable and certified improving.
                assert!(delta::move_improves_all(game.graph(), alpha, &mv)?);
                println!("{concept:>6}: unstable — e.g. {mv}");
            }
        }
    }

    // The social optimum for α ≥ 1 is the star (paper, Section 3.1). The
    // exact BSE checker is exponential and guarded to tiny n, so the
    // ladder here stops at 3-BSE; footnote 6 of the paper covers the rest.
    let star = Game::new(generators::star(15), alpha);
    let ladder = [
        Concept::Re,
        Concept::Bae,
        Concept::Ps,
        Concept::Bswe,
        Concept::Bge,
        Concept::Bne,
        Concept::KBse(2),
        Concept::KBse(3),
    ];
    let all_stable = ladder.iter().all(|c| star.is_stable(*c).unwrap_or(false));
    println!(
        "star(15): ρ = {} and stable under the whole ladder: {all_stable}",
        star.social_cost_ratio()?.as_f64(),
    );
    Ok(())
}
