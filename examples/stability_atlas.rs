//! A stability atlas: for a handful of named topologies, print the exact
//! rational α-intervals on which each is stable, per solution concept —
//! the paper's "stable for this range of α" statements as one table.
//!
//! Run with `cargo run --release --example stability_atlas`.

use bncg::core::windows::{stability_windows, StabilityWindow};
use bncg::core::Concept;
use bncg::graph::generators;

fn stable_part(w: &[StabilityWindow]) -> String {
    let bound = |b: &Option<bncg::core::windows::Threshold>, inf: &str| {
        b.map_or(inf.to_string(), |t| t.to_string())
    };
    let parts: Vec<String> = w
        .iter()
        .filter(|win| win.stable)
        .map(|win| format!("[{}, {}]", bound(&win.lo, "0"), bound(&win.hi, "∞")))
        .collect();
    if parts.is_empty() {
        "∅".to_string()
    } else {
        parts.join(" ∪ ")
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shapes = [
        ("star(10)", generators::star(10)),
        ("path(10)", generators::path(10)),
        ("cycle(8)", generators::cycle(8)),
        ("broom(4,3)", generators::broom(4, 3)),
        ("spider(3,3)", generators::spider(3, 3)),
        ("wheel(8)", generators::wheel(8)),
    ];
    println!("{:<14} {:<12} {:<12} {:<12}", "graph", "RE", "PS", "BGE");
    for (name, g) in &shapes {
        let re = stable_part(&stability_windows(g, Concept::Re)?);
        let ps = stable_part(&stability_windows(g, Concept::Ps)?);
        let bge = stable_part(&stability_windows(g, Concept::Bge)?);
        println!("{name:<14} {re:<12} {ps:<12} {bge:<12}");
    }
    println!();
    println!("Reading: a cycle's RE interval ends at Lemma 2.4's threshold (C8: 12);");
    println!("broom(4,3)'s gap [6, 8) is pairwise stable yet swap-unstable — the");
    println!("exact α-region where cooperation strictly helps.");
    Ok(())
}
