//! Builds the paper's worst-case equilibria — the stretched tree stars of
//! Theorem 3.10 — certifies them with the exact checkers, and shows how a
//! single extra unit of cooperation (coalitions of three) dissolves them.
//!
//! Run with `cargo run --release --example worst_equilibria`.

use bncg::constructions::stretched::theorem_3_10_instance;
use bncg::core::{bounds, concepts, social_cost_ratio, Alpha};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Theorem 3.10: stretched tree stars are bad BGE equilibria\n");
    println!(
        "{:>6} {:>6} {:>8} {:>14} {:>10}",
        "α", "n", "ρ(G)", "¼log₂α − 17/8", "in BGE"
    );
    for alpha_v in [240usize, 480, 960] {
        let alpha = Alpha::integer(alpha_v as i64)?;
        let star = theorem_3_10_instance(alpha_v, alpha_v);
        let stable = concepts::bge::is_stable(&star.graph, alpha);
        let rho = social_cost_ratio(&star.graph, alpha)?.as_f64();
        println!(
            "{alpha_v:>6} {:>6} {rho:>8.3} {:>14.3} {stable:>10}",
            star.graph.n(),
            bounds::theorem_3_10_lower(alpha)
        );
    }

    // The family is 2-BSE on trees (Proposition 3.7), so pairwise
    // cooperation tolerates its Θ(log α) inefficiency; Theorem 3.15 says
    // three-agent coalitions cap trees at ρ ≤ 25 — the family's ρ only
    // crosses that line at astronomical α, which is the theorem's point.
    //
    // The coalition-size separation is concrete already on ten nodes: the
    // spider with three legs of length three is in 2-BSE at α = 9 but a
    // three-agent coalition escapes it.
    use bncg::graph::generators;
    let spider = generators::spider(3, 3);
    let alpha9 = Alpha::integer(9)?;
    let in_2bse = concepts::kbse::find_violation(&spider, alpha9, 2)?.is_none();
    let escape = concepts::kbse::find_violation(&spider, alpha9, 3)?
        .expect("three-agent coalition escapes the spider");
    println!("\nspider(3 legs × 3) at α = 9: in 2-BSE = {in_2bse}; 3-coalition escape:");
    println!("  {escape}");
    assert!(bncg::core::delta::move_improves_all(
        &spider, alpha9, &escape
    )?);
    println!("\nExactly the paper's message: swaps/pairs tolerate Θ(log α) inefficiency,");
    println!("three-agent cooperation forces Θ(1) (Theorem 3.15).");
    Ok(())
}
