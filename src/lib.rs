//! # bncg — Bilateral Network Creation Games
//!
//! A full reproduction of *The Impact of Cooperation in Bilateral Network
//! Creation* (Friedrich, Gawendowicz, Lenzner, Zahn; PODC 2023) as a Rust
//! workspace. This facade crate re-exports the member crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`graph`] | `bncg-graph` | graph substrate: traversal, incremental distance matrices ([`graph::DistanceMatrix::apply_edge_toggle`]), rooted trees, generators, isomorphism, enumeration, graph6 |
//! | [`core`] | `bncg-core` | the game: exact costs, the incremental [`core::GameState`] evaluation engine, the eight solution concepts, unilateral NCG, theorem bounds |
//! | [`constructions`] | `bncg-constructions` | stretched trees, figure witnesses, conjecture/Venn searches |
//! | [`dynamics`] | `bncg-dynamics` | improving-move and round-robin dynamics running on one persistent engine state |
//! | [`atlas`] | `bncg-atlas` | the precomputed stability corpus: pluggable RAM/disk backings, the resumable canonical build walk, differential verification |
//! | [`serve`] | `bncg-serve` | the stability-checking daemon: line-JSON over TCP, time-slicing scheduler, per-tenant fair-share budget pools, atlas-backed `atlas_lookup` |
//! | [`analysis`] | `bncg-analysis` | the experiment harness regenerating every table and figure |
//!
//! # The solver surface
//!
//! All stability checking routes through [`core::solver`]: a
//! [`core::StabilityQuery`] (concept + instance) executed by a
//! [`core::Solver`] under an [`core::ExecPolicy`] — threads, evaluation
//! budget, deadline, cancel token — returns a structured
//! [`core::Verdict`]: stable, unstable with a replayable witness, or
//! *exhausted* with a serializable frontier that resumes the scan. The
//! engine underneath is [`core::GameState`]: cached all-pairs distances
//! and per-agent costs, exact per-move deltas
//! ([`core::GameState::evaluate_move`]), and per-toggle delta-BFS
//! application ([`core::GameState::apply_move`]). The legacy
//! `find_violation_in` entry points ([`core::Concept::find_violation_in`])
//! remain as thin wrappers over the solver.
//!
//! ```
//! use bncg::core::{Alpha, Concept, GameState, Move, Solver, StabilityQuery};
//! use bncg::graph::generators;
//!
//! let solver = Solver::default();
//! let mut state = GameState::new(generators::path(8), Alpha::integer(2)?);
//! // Drive the state to a pairwise-stable network, reusing every cache.
//! while let Some(mv) = solver
//!     .check(&StabilityQuery::on(Concept::Ps, &state))?
//!     .witness()
//!     .cloned()
//! {
//!     state.apply_move(&mv)?;
//! }
//! assert!(Concept::Ps.is_stable_in(&state)?);
//! # Ok::<(), bncg::core::GameError>(())
//! ```
//!
//! # Quickstart
//!
//! ```
//! use bncg::core::{Alpha, Concept, Game};
//! use bncg::graph::generators;
//!
//! let game = Game::new(generators::star(20), Alpha::integer(5)?);
//! assert!(game.is_stable(Concept::Ps)?);              // pairwise stable
//! assert_eq!(game.social_cost_ratio()?.as_f64(), 1.0); // and socially optimal
//! # Ok::<(), bncg::core::GameError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and the `experiments` binary
//! (`cargo run --release -p bncg-analysis --bin experiments -- all`) for
//! the paper's tables and figures.

#![warn(missing_docs)]

pub use bncg_analysis as analysis;
pub use bncg_atlas as atlas;
pub use bncg_constructions as constructions;
pub use bncg_core as core;
pub use bncg_dynamics as dynamics;
pub use bncg_graph as graph;
pub use bncg_serve as serve;
