//! # bncg — Bilateral Network Creation Games
//!
//! A full reproduction of *The Impact of Cooperation in Bilateral Network
//! Creation* (Friedrich, Gawendowicz, Lenzner, Zahn; PODC 2023) as a Rust
//! workspace. This facade crate re-exports the member crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`graph`] | `bncg-graph` | graph substrate: traversal, incremental distance matrices ([`graph::DistanceMatrix::apply_edge_toggle`]), rooted trees, generators, isomorphism, enumeration, graph6 |
//! | [`core`] | `bncg-core` | the game: exact costs, the incremental [`core::GameState`] evaluation engine, the eight solution concepts, unilateral NCG, theorem bounds |
//! | [`constructions`] | `bncg-constructions` | stretched trees, figure witnesses, conjecture/Venn searches |
//! | [`dynamics`] | `bncg-dynamics` | improving-move and round-robin dynamics running on one persistent engine state |
//! | [`analysis`] | `bncg-analysis` | the experiment harness regenerating every table and figure |
//!
//! # The evaluation engine
//!
//! All stability checking routes through [`core::GameState`]: it caches the
//! all-pairs distance matrix and per-agent costs, prices candidate moves
//! exactly without full recomputation ([`core::GameState::evaluate_move`],
//! returning a [`core::MoveDelta`]), evaluates batches across threads, and
//! applies accepted moves with per-toggle delta-BFS updates
//! ([`core::GameState::apply_move`]). Checkers accept a state via the
//! `find_violation_in` entry points ([`core::Concept::find_violation_in`]);
//! the graph-based signatures remain as one-shot wrappers.
//!
//! ```
//! use bncg::core::{Alpha, Concept, GameState, Move};
//! use bncg::graph::generators;
//!
//! let mut state = GameState::new(generators::path(8), Alpha::integer(2)?);
//! // Drive the state to a pairwise-stable network, reusing every cache.
//! while let Some(mv) = Concept::Ps.find_violation_in(&state)? {
//!     state.apply_move(&mv)?;
//! }
//! assert!(Concept::Ps.is_stable_in(&state)?);
//! # Ok::<(), bncg::core::GameError>(())
//! ```
//!
//! # Quickstart
//!
//! ```
//! use bncg::core::{Alpha, Concept, Game};
//! use bncg::graph::generators;
//!
//! let game = Game::new(generators::star(20), Alpha::integer(5)?);
//! assert!(game.is_stable(Concept::Ps)?);              // pairwise stable
//! assert_eq!(game.social_cost_ratio()?.as_f64(), 1.0); // and socially optimal
//! # Ok::<(), bncg::core::GameError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and the `experiments` binary
//! (`cargo run --release -p bncg-analysis --bin experiments -- all`) for
//! the paper's tables and figures.

#![warn(missing_docs)]

pub use bncg_analysis as analysis;
pub use bncg_constructions as constructions;
pub use bncg_core as core;
pub use bncg_dynamics as dynamics;
pub use bncg_graph as graph;
