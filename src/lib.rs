//! # bncg — Bilateral Network Creation Games
//!
//! A full reproduction of *The Impact of Cooperation in Bilateral Network
//! Creation* (Friedrich, Gawendowicz, Lenzner, Zahn; PODC 2023) as a Rust
//! workspace. This facade crate re-exports the member crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`graph`] | `bncg-graph` | graph substrate: traversal, rooted trees, generators, isomorphism, enumeration, graph6 |
//! | [`core`] | `bncg-core` | the game: exact costs, the eight solution concepts, unilateral NCG, theorem bounds |
//! | [`constructions`] | `bncg-constructions` | stretched trees, figure witnesses, conjecture/Venn searches |
//! | [`dynamics`] | `bncg-dynamics` | improving-move dynamics and convergence experiments |
//! | [`analysis`] | `bncg-analysis` | the experiment harness regenerating every table and figure |
//!
//! # Quickstart
//!
//! ```
//! use bncg::core::{Alpha, Concept, Game};
//! use bncg::graph::generators;
//!
//! let game = Game::new(generators::star(20), Alpha::integer(5)?);
//! assert!(game.is_stable(Concept::Ps)?);              // pairwise stable
//! assert_eq!(game.social_cost_ratio()?.as_f64(), 1.0); // and socially optimal
//! # Ok::<(), bncg::core::GameError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and the `experiments` binary
//! (`cargo run --release -p bncg-analysis --bin experiments -- all`) for
//! the paper's tables and figures.

#![warn(missing_docs)]

pub use bncg_analysis as analysis;
pub use bncg_constructions as constructions;
pub use bncg_core as core;
pub use bncg_dynamics as dynamics;
pub use bncg_graph as graph;
