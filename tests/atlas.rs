//! Integration tests for the stability atlas: the disk-resident
//! precomputed corpus (`bncg-atlas`) and its serving path through the
//! daemon's `atlas_lookup` op.
//!
//! The contracts exercised here are the ones the subsystem exists for —
//!
//! 1. **resumability**: a build interrupted at arbitrary points and
//!    resumed across real process-style reopens produces an atlas
//!    byte-identical to the one-shot build;
//! 2. **honesty**: stored verdicts replay exactly against a live solver
//!    (differential verification), and a torn segment tail is detected
//!    and re-derived, never silently served;
//! 3. **zero-cost serving**: an `atlas_lookup` hit over the wire charges
//!    the tenant's budget pool nothing.

use bncg::atlas::{
    build, verify_atlas, AlphaSpec, Atlas, BuildSpec, DiskBacking, MemoryBacking, RamBacking,
};
use bncg::core::jsonio;
use bncg::core::{Alpha, Concept};
use bncg::graph::generators;
use bncg::serve::protocol::render_edges;
use bncg::serve::scheduler::SchedulerConfig;
use bncg::serve::server::{Server, ServerConfig};
use bncg::serve::AtlasService;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A scratch directory under the target dir, wiped on creation and
/// removed on drop (kept on panic for post-mortem).
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("bncg-atlas-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

/// Every stored line of an atlas, in order — the byte-level identity the
/// resume property is stated over.
fn lines<B: MemoryBacking>(atlas: &Atlas<B>) -> Vec<String> {
    let mut out = Vec::new();
    atlas
        .backing()
        .for_each_line(&mut |_, line| out.push(line.to_string()))
        .expect("readable backing");
    out
}

/// A spec cheap enough to build many times in one test: every concept,
/// two fixed prices plus the n-dependent one, trees-through-cliques.
fn small_spec() -> BuildSpec {
    BuildSpec::standard(5)
}

#[test]
fn interrupted_builds_resume_to_the_identical_atlas() {
    // Reference: the one-shot build.
    let scratch = Scratch::new("resume-oneshot");
    let spec = small_spec();
    let mut oneshot = Atlas::open(DiskBacking::open(scratch.path()).unwrap()).unwrap();
    let report = build(&mut oneshot, &spec, u64::MAX, None).unwrap();
    assert!(report.complete);
    assert!(report.appended > 1000, "n ≤ 5 must store > 1000 records");
    let want = lines(&oneshot);

    // Property: for seeded random interruption schedules, a chain of
    // step-limited builds — each reopening the directory from scratch,
    // as a new process would — reaches the same bytes.
    for seed in 0..4u64 {
        let mut rng = SmallRng::seed_from_u64(0xA71A5 ^ seed);
        let scratch = Scratch::new(&format!("resume-chain-{seed}"));
        // Small segments so the chain also crosses rotation boundaries.
        let mut rounds = 0;
        loop {
            rounds += 1;
            let backing = DiskBacking::open_with_segment_records(scratch.path(), 97).unwrap();
            let mut atlas = Atlas::open(backing).unwrap();
            let step = rng.gen_range(50..400);
            let report = build(&mut atlas, &spec, u64::MAX, Some(step)).unwrap();
            if report.complete {
                assert_eq!(
                    lines(&atlas),
                    want,
                    "seed {seed}: resumed chain diverged from the one-shot build"
                );
                break;
            }
            assert!(rounds < 100, "seed {seed}: chain failed to converge");
        }
    }
}

#[test]
fn resume_does_not_recheck_the_stored_prefix() {
    // The resume walk must skip stored records without re-running the
    // solver: a drained budget pool would otherwise turn the prefix into
    // exhausted records on the second pass.
    let spec = small_spec();
    let mut atlas = Atlas::open(RamBacking::new()).unwrap();
    let first = build(&mut atlas, &spec, u64::MAX, None).unwrap();
    assert!(first.complete);
    // Resume with a budget equal to what is already stored: zero slack,
    // yet nothing new to compute — the walk must finish charging nothing.
    let stored_evals = atlas.evals_total();
    let again = build(&mut atlas, &spec, stored_evals, None).unwrap();
    assert!(again.complete);
    assert_eq!(again.appended, 0);
    assert_eq!(again.evals_charged, 0);
    assert_eq!(again.skipped, first.appended);
}

#[test]
fn differential_verify_replays_stored_verdicts_exactly() {
    // The satellite contract: a seeded sample of stored entries at
    // n ≤ 8 over α ∈ {1/2, 2, n}, each replayed against a live Solver
    // demanding exact verdict + witness + eval-count equality.
    let spec = BuildSpec {
        max_n: 8,
        grid: vec![
            AlphaSpec::Fixed(Alpha::from_ratio(1, 2).unwrap()),
            AlphaSpec::Fixed(Alpha::integer(2).unwrap()),
            AlphaSpec::N,
        ],
        concepts: vec![Concept::Ps, Concept::Bne],
    };
    let mut atlas = Atlas::open(RamBacking::new()).unwrap();
    let report = build(&mut atlas, &spec, u64::MAX, None).unwrap();
    assert!(report.complete);

    let verified = verify_atlas(&atlas, 256, 0xD1FF, 8).unwrap();
    assert_eq!(verified.replayed, 256);
    assert_eq!(verified.skipped_exhausted, 0);
    assert!(verified.eligible > 50_000, "n ≤ 8 corpus is ~73k records");
}

#[test]
fn torn_segment_tail_is_detected_and_rederived() {
    let scratch = Scratch::new("torn-tail");
    let spec = small_spec();
    let backing = DiskBacking::open_with_segment_records(scratch.path(), 97).unwrap();
    let mut atlas = Atlas::open(backing).unwrap();
    build(&mut atlas, &spec, u64::MAX, None).unwrap();
    let want = lines(&atlas);
    let stored = atlas.len();
    drop(atlas);

    // Tear the last segment mid-record, as a crashed writer would: chop
    // the final 40 bytes (well inside the last line plus its newline).
    let last_seg = std::fs::read_dir(scratch.path())
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            p.file_name()?.to_str()?.starts_with("seg-").then_some(p)
        })
        .max()
        .unwrap();
    let bytes = std::fs::read(&last_seg).unwrap();
    std::fs::write(&last_seg, &bytes[..bytes.len() - 40]).unwrap();

    // Reopen: the torn line is dropped (detected, not served)...
    let backing = DiskBacking::open_with_segment_records(scratch.path(), 97).unwrap();
    let mut atlas = Atlas::open(backing).unwrap();
    assert_eq!(atlas.dropped_tail(), 1);
    assert_eq!(atlas.len(), stored - 1);

    // ...and the resumed build re-derives it, restoring byte identity.
    let report = build(&mut atlas, &spec, u64::MAX, None).unwrap();
    assert!(report.complete);
    assert_eq!(report.rederived_tail, 1);
    assert_eq!(report.appended, 1);
    assert_eq!(lines(&atlas), want);
}

/// Spins up a daemon backed by an n ≤ 5 corpus and runs one
/// request/response exchange per line.
fn exchange(server: &Server, line: &str) -> String {
    let mut sock = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(sock.try_clone().expect("clone"));
    sock.write_all(line.as_bytes()).expect("send");
    sock.write_all(b"\n").expect("send");
    let mut response = String::new();
    reader.read_line(&mut response).expect("recv");
    response.trim().to_string()
}

#[test]
fn served_atlas_hits_charge_the_tenant_pool_nothing() {
    let mut atlas = Atlas::open(RamBacking::new()).unwrap();
    build(&mut atlas, &small_spec(), u64::MAX, None).unwrap();
    // Re-open type-erased, as the daemon's loader does.
    let mut boxed: Box<dyn MemoryBacking + Send + Sync> = Box::new(RamBacking::new());
    atlas
        .backing()
        .for_each_line(&mut |_, line| boxed.append_line(line).unwrap())
        .unwrap();
    let server = Server::start(ServerConfig {
        scheduler: SchedulerConfig {
            workers: 1,
            slice: 256,
            default_grant: 10_000,
            journal: None,
        },
        atlas: Arc::new(AtlasService::with_atlas(Atlas::open(boxed).unwrap())),
        ..ServerConfig::default()
    })
    .expect("bind");

    let g = generators::path(5);
    let lookup = |id: u64, alpha: &str| {
        format!(
            "{{\"id\":{id},\"op\":\"atlas_lookup\",\"tenant\":\"carol\",\"concept\":\"bne\",\
             \"alpha\":\"{alpha}\",\"n\":{},\"edges\":{}}}",
            g.n(),
            render_edges(&g)
        )
    };

    // On-grid: answered from the corpus, zero evals, zero slices.
    let hit = exchange(&server, &lookup(1, "2"));
    assert_eq!(jsonio::str_field(&hit, "source"), Some("atlas"));
    assert_eq!(jsonio::str_field(&hit, "verdict"), Some("unstable"));
    assert_eq!(jsonio::u64_field(&hit, "evals"), Some(0));
    assert_eq!(jsonio::u64_field(&hit, "slices"), Some(0));
    // The hit never reached the scheduler: carol has no pool at all yet.
    assert!(server.scheduler().tenants().is_empty());
    assert_eq!((server.atlas().hits(), server.atlas().misses()), (1, 0));

    // Off-grid α: falls through to a live check that *does* meter.
    let live = exchange(&server, &lookup(2, "7/3"));
    assert_eq!(jsonio::str_field(&live, "source"), Some("live"));
    assert_eq!(jsonio::str_field(&live, "verdict"), Some("unstable"));
    assert!(jsonio::u64_field(&live, "evals").unwrap() > 0);
    let carol = server
        .scheduler()
        .tenants()
        .into_iter()
        .find(|t| t.name == "carol")
        .expect("live fall-through creates the pool");
    assert!(carol.used > 0, "live path must charge the pool");
    assert_eq!((server.atlas().hits(), server.atlas().misses()), (1, 1));

    // Both verdicts agree: the corpus and the solver are one substrate.
    assert_eq!(
        jsonio::object_field(&hit, "witness"),
        jsonio::object_field(&live, "witness")
    );
    server.stop();
}

/// The full n ≤ 9 standard corpus under one pooled budget. ~260k graph
/// classes with every concept: minutes of wall clock, so opt-in.
#[test]
#[ignore = "builds the full n ≤ 9 corpus; run explicitly"]
fn full_n9_atlas_builds_under_a_single_pooled_budget() {
    let scratch = Scratch::new("full-n9");
    let spec = BuildSpec::standard(9);
    let budget: u64 = 2_000_000_000;
    let mut atlas = Atlas::open(DiskBacking::open(scratch.path()).unwrap()).unwrap();
    let report = build(&mut atlas, &spec, budget, None).unwrap();
    assert!(report.complete);
    assert!(report.pool_used <= budget);
    // Spot-check honesty on a seeded sample before declaring victory.
    let verified = verify_atlas(&atlas, 64, 0x9A7C, 8).unwrap();
    assert_eq!(verified.replayed, 64);
}
