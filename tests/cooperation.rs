//! Cross-crate integration tests for the cooperation machinery added on
//! top of the core reproduction: best responses, round-robin dynamics,
//! the ablation experiments, and the extra topology generators in game
//! context.

use bncg::core::{best_response, concepts, Alpha, Concept};
use bncg::dynamics::round_robin;
use bncg::graph::generators;

fn a(s: &str) -> Alpha {
    s.parse().unwrap()
}

#[test]
fn round_robin_reaches_certified_bne() {
    let mut rng = bncg::graph::test_rng(7);
    let mut converged = 0;
    for _ in 0..6 {
        let start = generators::random_tree(10, &mut rng);
        let out = round_robin::run(&start, a("2"), 300).unwrap();
        if out.converged {
            converged += 1;
            assert!(Concept::Bne.is_stable(&out.final_graph, a("2")).unwrap());
            assert!(!out.cycled);
        }
    }
    assert!(converged > 0, "at least some runs must converge");
}

#[test]
fn best_responses_characterize_bne_on_figure_six() {
    // Figure 6's graph is a BNE: no agent may have a feasible improving
    // neighborhood move.
    let fig = bncg::constructions::figures::figure6();
    for u in 0..fig.graph.n() as u32 {
        let br = best_response(&fig.graph, fig.alpha, u).unwrap();
        assert!(br.best.is_none(), "agent {u} should have no feasible move");
    }
}

#[test]
fn best_response_dynamics_never_hurt_the_mover() {
    let mut rng = bncg::graph::test_rng(8);
    let start = generators::random_tree(9, &mut rng);
    let alpha = a("3/2");
    let out = round_robin::run(&start, alpha, 200).unwrap();
    // Replaying the history, each mover's own cost strictly decreases.
    let mut g = start;
    for mv in &out.history {
        let center = match mv {
            bncg::core::Move::Neighborhood { center, .. } => *center,
            other => panic!("round robin only plays neighborhood moves, got {other}"),
        };
        let before = bncg::core::agent_cost(&g, center);
        g = mv.apply(&g).unwrap();
        let after = bncg::core::agent_cost(&g, center);
        assert!(after.better_than(&before, alpha));
    }
}

#[test]
fn complete_bipartite_and_wheel_have_expected_stability() {
    // K_{a,b} has diameter 2, so by Prop. 3.16 it is a BSE at α = 1.
    let k23 = generators::complete_bipartite(2, 3);
    assert!(concepts::bse::is_stable(&k23, a("1")).unwrap());
    // At α > 1 a same-side pair is at distance 2 and edges are redundant:
    // removal reasoning belongs to RE — the wheel sheds rim edges at high α.
    let w6 = generators::wheel(6);
    assert!(concepts::re::is_stable(&w6, a("1")));
    assert!(!concepts::re::is_stable(&w6, a("3")));
}

#[test]
fn brooms_fold_under_swaps_but_not_pairwise() {
    // Brooms (a path with a leaf tuft at one end) realize the PS-vs-BSwE
    // gap: the tuft makes a far-end swap valuable for the tuft holder
    // while no single *addition* pays for itself. broom(4, 3) at α = 6 is
    // the smallest such witness (found by exhaustive search over all
    // 8-node trees; it doubles as the curated Figure 1a properness
    // witness for BGE ⊊ PS).
    let g = generators::broom(4, 3);
    let alpha = a("6");
    assert!(concepts::ps::is_stable(&g, alpha));
    let swap = concepts::bswe::find_violation(&g, alpha).expect("swap must exist");
    assert!(bncg::core::delta::move_improves_all(&g, alpha, &swap).unwrap());
    // A broom is a caterpillar with one tufted end; the generators agree.
    let as_caterpillar = generators::caterpillar(5, &[0, 0, 0, 0, 3]);
    assert!(bncg::graph::iso::are_isomorphic(&g, &as_caterpillar));
}

#[test]
fn ablation_experiments_hold_their_assertions() {
    // The ablation runners assert engine agreement / refuter soundness
    // internally; running them is the test.
    let mut r = bncg::analysis::report::Report::new();
    bncg::analysis::ablations::delta_engines(&mut r, true).unwrap();
    bncg::analysis::ablations::kbse_restriction(&mut r, true).unwrap();
    bncg::analysis::structure::bswe_depth(&mut r, true).unwrap();
    let json = r.to_json();
    assert!(json.contains("\"sections\""));
}
