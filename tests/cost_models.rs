//! Per-model property suite for the pluggable cost-model layer
//! (`bncg::core::cost_model`): the incremental-evaluation contract —
//! [`GameState::evaluate_move`]-style deltas and [`GameState::apply_move`]
//! cache maintenance agree with a from-scratch recomputation of the
//! model on the successor graph — holds for **every** model, resumed
//! scan chains reproduce uninterrupted scans, and unproven pruning
//! filters are skipped (never silently wrong) under non-linear models.
//!
//! Same seeded-case harness as `tests/proptests.rs` (the container is
//! offline, so no `proptest` crate): failures name the seed.

use bncg::core::solver::{ExecPolicy, Solver, StabilityQuery, Verdict};
use bncg::core::{
    best_response_in, best_response_resume, best_response_with_policy, Alpha, BestResponseVerdict,
    CheckBudget, Concept, CostModel, CostModelSpec, GameState, Move, Utility,
};
use bncg::graph::{generators, Graph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

/// Every model the layer ships, spanning all three soundness classes:
/// the default, a distance-linear generic model, two non-linear
/// utilities, and the scenario-summed adversary model.
const MODELS: [CostModelSpec; 5] = [
    CostModelSpec::SumDistances,
    CostModelSpec::Generalized(Utility::Identity),
    CostModelSpec::Generalized(Utility::Capped(2)),
    CostModelSpec::Generalized(Utility::Quadratic),
    CostModelSpec::AdversaryRobust,
];

/// Runs `f` on `CASES` independently seeded RNGs, naming the seed on panic.
fn prop(name: &str, mut f: impl FnMut(&mut SmallRng)) {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC057_u64 ^ (seed * 0x9E37_79B9));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        assert!(result.is_ok(), "property `{name}` failed at seed {seed}");
    }
}

/// A random connected graph on 3..=12 nodes (the suite's n ceiling).
fn random_connected(rng: &mut SmallRng) -> Graph {
    let n = rng.gen_range(3..=12usize);
    generators::random_connected(n, 0.3, rng)
}

/// The issue's α grid: below the tree threshold, the workhorse value,
/// and the n-scale regime.
fn alpha_grid(n: usize) -> [Alpha; 3] {
    [
        Alpha::from_ratio(1, 2).expect("α"),
        Alpha::integer(2).expect("α"),
        Alpha::integer(n as i64).expect("α"),
    ]
}

/// A random valid move against `g`, if the drawn kind has a candidate.
fn random_move(g: &Graph, rng: &mut SmallRng) -> Option<Move> {
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let non_edges: Vec<(u32, u32)> = g.non_edges().collect();
    match rng.gen_range(0..3u32) {
        0 => {
            let &(u, v) = edges.get(rng.gen_range(0..edges.len().max(1)))?;
            let (agent, target) = if rng.gen_bool(0.5) { (u, v) } else { (v, u) };
            Some(Move::Remove { agent, target })
        }
        1 => {
            if non_edges.is_empty() {
                return None;
            }
            let &(u, v) = non_edges.get(rng.gen_range(0..non_edges.len()))?;
            Some(Move::BilateralAdd { u, v })
        }
        _ => {
            let &(agent, old) = edges.get(rng.gen_range(0..edges.len().max(1)))?;
            let candidates: Vec<u32> = (0..g.n() as u32)
                .filter(|&w| w != agent && w != old && !g.has_edge(agent, w))
                .collect();
            let &new = candidates.get(rng.gen_range(0..candidates.len().max(1)))?;
            Some(Move::Swap { agent, old, new })
        }
    }
}

#[test]
fn evaluate_move_matches_from_scratch_model_cost() {
    prop("evaluate ≡ from-scratch per model", |rng| {
        let g = random_connected(rng);
        for model in MODELS {
            for alpha in alpha_grid(g.n()) {
                let state = GameState::with_cost_model(g.clone(), alpha, model);
                let Some(mv) = random_move(&g, rng) else {
                    continue;
                };
                let mut evaluator = state.evaluator();
                let delta = evaluator.evaluate(&mv).expect("valid move");
                let successor = mv.apply(&g).expect("valid move");
                for d in &delta.agents {
                    assert_eq!(
                        d.before,
                        model.cost(&g, d.agent),
                        "stale `before` for agent {} under {model} (α = {alpha})",
                        d.agent
                    );
                    assert_eq!(
                        d.after,
                        model.cost(&successor, d.agent),
                        "wrong `after` for agent {} under {model} on {mv} (α = {alpha})",
                        d.agent
                    );
                }
            }
        }
    });
}

#[test]
fn apply_move_maintains_every_models_cost_cache() {
    prop("apply_move cache ≡ from-scratch per model", |rng| {
        let g = random_connected(rng);
        for model in MODELS {
            let alpha = alpha_grid(g.n())[rng.gen_range(0..3usize)];
            let mut state = GameState::with_cost_model(g.clone(), alpha, model);
            // A short random walk: the cache must stay exact after
            // every mutation, not just the first.
            for _ in 0..4 {
                let Some(mv) = random_move(state.graph(), rng) else {
                    break;
                };
                state.apply_move(&mv).expect("valid move");
                for u in 0..state.n() as u32 {
                    assert_eq!(
                        state.costs()[u as usize],
                        model.cost(state.graph(), u),
                        "cache diverged at agent {u} under {model} after {mv}"
                    );
                }
            }
        }
    });
}

#[test]
fn resumed_best_response_chains_match_uninterrupted_scans() {
    prop("resume chain ≡ uninterrupted per model", |rng| {
        let g = random_connected(rng);
        let alpha = alpha_grid(g.n())[rng.gen_range(0..3usize)];
        let agent = rng.gen_range(0..g.n()) as u32;
        for model in MODELS {
            let state = GameState::with_cost_model(g.clone(), alpha, model);
            let uninterrupted = best_response_with_policy(&state, agent, &ExecPolicy::default())
                .expect("unbudgeted scan completes");
            let BestResponseVerdict::Optimal {
                response, evals, ..
            } = uninterrupted
            else {
                panic!("unbudgeted scan cannot exhaust");
            };
            // Drive the identical scan in 7-eval slices to completion.
            let sliced = ExecPolicy::default().with_eval_budget(7);
            let mut verdict =
                best_response_with_policy(&state, agent, &sliced).expect("sliced scan starts");
            let mut slices = 1usize;
            loop {
                match verdict {
                    BestResponseVerdict::Optimal {
                        response: chained,
                        evals: chained_evals,
                        ..
                    } => {
                        assert_eq!(
                            chained.best, response.best,
                            "chained best move diverged under {model} (α = {alpha})"
                        );
                        assert_eq!(
                            chained_evals, evals,
                            "chained cumulative evals diverged under {model}"
                        );
                        break;
                    }
                    BestResponseVerdict::ImprovedSoFar { frontier, .. }
                    | BestResponseVerdict::Exhausted { frontier, .. } => {
                        slices += 1;
                        assert!(slices < 10_000, "chain failed to converge under {model}");
                        verdict = best_response_resume(&state, &sliced, &frontier)
                            .expect("resume from own frontier");
                    }
                }
            }
        }
    });
}

#[test]
fn resumed_solver_chains_match_uninterrupted_checks() {
    prop("solver chain ≡ uninterrupted per model", |rng| {
        let g = random_connected(rng);
        let alpha = alpha_grid(g.n())[rng.gen_range(0..3usize)];
        for model in MODELS {
            let query = StabilityQuery::new(Concept::Bne, &g, alpha).with_cost_model(model);
            let direct = Solver::default().check(&query).expect("unbudgeted check");
            let sliced = ExecPolicy::default().with_eval_budget(11);
            let mut chained = Solver::new(sliced.clone()).check(&query).expect("slice");
            let mut slices = 1usize;
            let chained = loop {
                match chained {
                    Verdict::Exhausted { frontier, .. } => {
                        slices += 1;
                        assert!(slices < 10_000, "chain failed to converge under {model}");
                        let resumed = StabilityQuery::new(Concept::Bne, &g, alpha)
                            .with_cost_model(model)
                            .resume(frontier);
                        chained = Solver::new(sliced.clone()).check(&resumed).expect("slice");
                    }
                    done => break done,
                }
            };
            match (&direct, &chained) {
                (Verdict::Stable { evals, .. }, Verdict::Stable { evals: e2, .. }) => {
                    assert_eq!(evals, e2, "cumulative evals diverged under {model}");
                }
                (Verdict::Unstable { witness, .. }, Verdict::Unstable { witness: w2, .. }) => {
                    assert_eq!(witness, w2, "witness diverged under {model}");
                }
                (a, b) => panic!("verdicts diverged under {model}: {a:?} vs {b:?}"),
            }
        }
    });
}

#[test]
fn unsound_filters_are_skipped_and_verdicts_match_the_per_agent_reference() {
    // Scan-level capability check on pinned instances: non-linear
    // models must report zero pruned candidates (the proven filters are
    // sum-of-distances theorems), and the verdict must still equal the
    // filter-free per-agent truth — BNE-stable iff no agent has any
    // improving strategy change.
    let alpha = Alpha::integer(2).expect("α");
    for g in [
        generators::star(10),
        generators::path(8),
        generators::cycle(9),
    ] {
        for model in [
            CostModelSpec::Generalized(Utility::Capped(2)),
            CostModelSpec::Generalized(Utility::Quadratic),
            CostModelSpec::AdversaryRobust,
        ] {
            let verdict = Solver::default()
                .check(&StabilityQuery::new(Concept::Bne, &g, alpha).with_cost_model(model))
                .expect("check completes");
            let state = GameState::with_cost_model(g.clone(), alpha, model);
            let reference_stable = (0..g.n() as u32).all(|u| {
                best_response_in(&state, u, CheckBudget::new(u64::MAX))
                    .expect("per-agent scan")
                    .best
                    .is_none()
            });
            match verdict {
                Verdict::Stable { pruned, .. } => {
                    assert_eq!(pruned, 0, "non-linear {model} must run filter-free");
                    assert!(
                        reference_stable,
                        "scan says stable, per-agent reference disagrees under {model}"
                    );
                }
                Verdict::Unstable { .. } => {
                    assert!(
                        !reference_stable,
                        "scan says unstable, per-agent reference disagrees under {model}"
                    );
                }
                Verdict::Exhausted { .. } => panic!("unbudgeted scan cannot exhaust"),
            }
        }
    }
}

#[test]
fn distance_linear_models_keep_the_proven_filters() {
    // The flip side of the capability table: the default model and
    // `generalized:id` still prune on an instance where the bounds bite,
    // and their verdicts coincide (identity utility IS the paper's
    // objective, only the dispatch path differs).
    let g = generators::star(16);
    let alpha = Alpha::integer(2).expect("α");
    let mut pruned_counts = Vec::new();
    for model in [
        CostModelSpec::SumDistances,
        CostModelSpec::Generalized(Utility::Identity),
    ] {
        let verdict = Solver::default()
            .check(&StabilityQuery::new(Concept::Bne, &g, alpha).with_cost_model(model))
            .expect("check completes");
        match verdict {
            Verdict::Stable { pruned, .. } => pruned_counts.push(pruned),
            other => panic!("star16 at α = 2 must be BNE-stable under {model}: {other:?}"),
        }
    }
    assert!(
        pruned_counts.iter().all(|&p| p > 0),
        "distance-linear models must keep pruning: {pruned_counts:?}"
    );
}
