//! Differential test harness for the branch-and-bound candidate
//! generator (ISSUE 5). The generator replaces the dense mask loops of
//! the exponential scans, so three equalities must hold everywhere:
//!
//! 1. **Generator ≡ raw reference**: verdicts — and, where enumeration
//!    order is shared (BNE, BSE), witnesses — equal the retained
//!    `*_reference` raw scans over pinned seeded instances
//!    (n ≤ 12, α ∈ {1/2, 2, n}).
//! 2. **Generator ≡ PR 2 dense loop**: the BNE scan prices *exactly*
//!    the candidates the retained dense-loop scan
//!    (`find_violation_in_dense`) prices — same witness, same
//!    evaluated/pruned/generated counts — the generator only changes
//!    how fast non-candidates are passed over.
//! 3. **Resumed ≡ uninterrupted**: a chain of generator scans resumed
//!    from frontiers under adversarial 1-eval budgets lands on the
//!    identical witness an uninterrupted generator scan returns.
//!
//! Plus the scale headline the generator buys: pinned n = 24 instances
//! whose exact BNE check was out of reach of the dense loops complete
//! under a finite eval budget, and the golden (concept, instance,
//! witness) triples recorded from the PR 4 scans at n = 16
//! (`tests/golden/witnesses_n16.jsonl`) are reproduced bit-for-bit —
//! the lexicographic-order contract.
//!
//! Seeded-case harness as in `proptests.rs` (the container is offline,
//! so no `proptest` crate): failures reproduce from the printed seed.

use bncg::core::solver::{ExecPolicy, Solver, StabilityQuery, Verdict};
use bncg::core::{concepts, delta, jsonio, Alpha, CheckBudget, Concept, GameState, Move};
use bncg::graph::{generators, graph6};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 10;

fn prop(name: &str, mut f: impl FnMut(&mut SmallRng)) {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9E4E_u64 ^ (seed * 0x9E37_79B9));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        assert!(result.is_ok(), "property `{name}` failed at seed {seed}");
    }
}

/// The ISSUE's α grid: below 1, above 1, and at the scale of n.
fn alpha_grid(n: usize) -> Vec<Alpha> {
    vec![
        Alpha::from_ratio(1, 2).unwrap(),
        Alpha::integer(2).unwrap(),
        Alpha::integer(n as i64).unwrap(),
    ]
}

fn random_instance(max_n: usize, rng: &mut SmallRng) -> bncg::graph::Graph {
    let n = rng.gen_range(4..=max_n);
    if rng.gen_bool(0.4) {
        generators::random_tree(n, rng)
    } else {
        generators::random_connected(n, 0.3, rng)
    }
}

/// A budget the raw references never hit — the differential corpus is
/// sized so the *reference* side stays affordable, not the generator.
fn huge() -> CheckBudget {
    CheckBudget::new(u64::MAX)
}

/// Drains a budgeted query to a conclusive verdict through resume
/// frontiers.
fn resolve_with_resume(solver: &Solver, concept: Concept, state: &GameState) -> Option<Move> {
    let mut query = StabilityQuery::on(concept, state);
    let mut rounds = 0u32;
    loop {
        match solver.check(&query).unwrap() {
            Verdict::Stable { .. } => return None,
            Verdict::Unstable { witness, .. } => return Some(witness),
            Verdict::Exhausted { frontier, .. } => {
                query = StabilityQuery::on(concept, state).resume(frontier);
                rounds += 1;
                assert!(rounds < 1_000_000, "resume loop failed to terminate");
            }
        }
    }
}

/// Differential law 1 + 2 for BNE: generator ≡ raw reference ≡ dense
/// PR 2 loop, witness *and* work accounting.
#[test]
fn generated_bne_scan_matches_reference_and_dense_loop_exactly() {
    prop("bne generator ≡ reference ≡ dense", |rng| {
        let g = random_instance(12, rng);
        for alpha in alpha_grid(g.n()) {
            let state = GameState::new(g.clone(), alpha);
            let reference = concepts::bne::find_violation_in_reference(&state, huge()).unwrap();
            let (generated, gstats) =
                concepts::bne::find_violation_in_with_stats(&state, huge()).unwrap();
            let (dense, dstats) = concepts::bne::find_violation_in_dense(&state, huge()).unwrap();
            assert_eq!(
                generated, reference,
                "generator witness diverged from the raw reference at α = {alpha}"
            );
            assert_eq!(
                generated, dense,
                "generator witness diverged from the dense loop at α = {alpha}"
            );
            assert_eq!(
                gstats.evaluated, dstats.evaluated,
                "generator priced different candidates than the dense loop at α = {alpha}"
            );
            assert_eq!(gstats.generated, dstats.generated, "raw-space accounting");
            assert_eq!(
                gstats.pruned, dstats.pruned,
                "skip accounting at α = {alpha}"
            );
            assert!(
                gstats.visited <= dstats.generated + 1,
                "generator took more steps than the raw space has masks"
            );
            if let Some(mv) = generated {
                assert!(delta::move_improves_all(&g, alpha, &mv).unwrap());
            }
        }
    });
}

/// Differential law 1 for k-BSE (verdicts — the coalition scan reorders
/// candidates across coalitions) and BSE (witnesses — order is shared).
#[test]
fn generated_coalition_scans_match_their_references() {
    prop("kbse/bse generator ≡ reference", |rng| {
        let g = random_instance(7, rng);
        for alpha in alpha_grid(g.n()) {
            let state = GameState::new(g.clone(), alpha);
            for k in [2usize, 3] {
                let (generated, _) =
                    concepts::kbse::find_violation_in_with_stats(&state, k, huge()).unwrap();
                let reference =
                    concepts::kbse::find_violation_in_reference(&state, k, huge()).unwrap();
                assert_eq!(
                    generated.is_some(),
                    reference.is_some(),
                    "{k}-BSE verdict diverged at α = {alpha}"
                );
                if let Some(mv) = generated {
                    assert!(delta::move_improves_all(&g, alpha, &mv).unwrap());
                }
            }
        }
        let g = random_instance(6, rng);
        for alpha in alpha_grid(g.n()) {
            let state = GameState::new(g.clone(), alpha);
            let (generated, _) =
                concepts::bse::find_violation_in_with_stats(&state, huge()).unwrap();
            let reference = concepts::bse::find_violation_in_reference(&state, huge()).unwrap();
            assert_eq!(generated, reference, "BSE witness diverged at α = {alpha}");
        }
    });
}

/// Differential law 3: generator-resumed chains under adversarial
/// 1-eval budgets equal the uninterrupted generator scans — for every
/// exponential concept, sequential and sharded.
#[test]
fn generator_resumed_chains_equal_uninterrupted_scans() {
    prop("resume chains under 1-eval budgets", |rng| {
        let concepts_grid = [
            (Concept::Bne, 10usize),
            (Concept::KBse(2), 7),
            (Concept::Bse, 5),
        ];
        for (concept, max_n) in concepts_grid {
            let g = random_instance(max_n, rng);
            for alpha in alpha_grid(g.n()) {
                let state = GameState::new(g.clone(), alpha);
                let uninterrupted = Solver::default()
                    .check(&StabilityQuery::on(concept, &state))
                    .unwrap();
                for threads in [1usize, 2] {
                    let adversarial = Solver::new(
                        ExecPolicy::default()
                            .with_eval_budget(1)
                            .with_threads(threads),
                    );
                    let resolved = resolve_with_resume(&adversarial, concept, &state);
                    assert_eq!(
                        resolved,
                        uninterrupted.witness().cloned(),
                        "chain diverged under {concept}, α = {alpha}, {threads} threads"
                    );
                }
            }
        }
    });
}

/// The scale headline: pinned n = 24 instances complete **exactly**
/// under a finite eval budget — the dense loops could not even iterate
/// their 24·2²³ surviving masks inside it, and the legacy raw-space
/// guard refused them outright at any n > 21. The instance set is the
/// one definition `table1` and `ci_gate` also use.
#[test]
fn exact_bne_completes_on_pinned_n24_instances_under_a_finite_budget() {
    let alpha2 = Alpha::integer(2).unwrap();
    let solver = Solver::new(ExecPolicy::default().with_eval_budget(2_000_000));
    for (name, g, alpha, stable) in &bncg::analysis::table1::bne_n24_instances() {
        let verdict = solver
            .check(&StabilityQuery::new(Concept::Bne, g, *alpha))
            .unwrap();
        match verdict.is_stable() {
            Some(s) => assert_eq!(s, *stable, "{name} verdict"),
            None => panic!("{name} exhausted a 2M-eval budget instead of completing"),
        }
        if let Some(mv) = verdict.witness() {
            assert!(delta::move_improves_all(g, *alpha, mv).unwrap());
        }
    }
    // The convenience entry point (previously hard-refused past n = 21)
    // carries the same result.
    assert!(concepts::bne::is_stable(&generators::star(24), alpha2).unwrap());
}

/// The enumeration-boundedness fix, measured: on the pinned star16
/// kernel the generator touches ≤ 1% of the raw mask space (the dense
/// loop touched 100% of the surviving space) while pricing nothing.
#[test]
fn generator_touches_a_vanishing_fraction_of_the_star16_space() {
    let state = GameState::new(generators::star(16), Alpha::integer(2).unwrap());
    let (mv, stats) = concepts::bne::find_violation_in_with_stats(&state, huge()).unwrap();
    assert!(mv.is_none());
    assert_eq!(stats.evaluated, 0, "the star scan is fully pruned");
    assert_eq!(stats.skipped(), stats.generated);
    assert!(
        stats.visited * 100 <= stats.generated,
        "generator visited {} steps of a {}-mask raw space (> 1%)",
        stats.visited,
        stats.generated
    );
}

/// Golden-witness regression (the lexicographic-order contract): the
/// generator reproduces the (concept, instance, witness) triples the
/// PR 4 dense scans produced at n = 16 for the bench families,
/// bit-for-bit.
#[test]
fn generator_reproduces_the_pinned_golden_witnesses() {
    let corpus = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/witnesses_n16.jsonl"
    ))
    .expect("golden corpus present");
    let solver = Solver::default();
    let mut checked = 0usize;
    for line in corpus.lines().filter(|l| !l.trim().is_empty()) {
        let field = |key: &str| {
            jsonio::str_field(line, key)
                .unwrap_or_else(|| panic!("golden line missing {key:?}: {line}"))
        };
        let concept: Concept = field("concept").parse().unwrap();
        let alpha: Alpha = field("alpha").parse().unwrap();
        let g = graph6::decode(field("graph6")).unwrap();
        assert_eq!(g.n(), 16, "golden corpus is the n = 16 bench families");
        let verdict = solver
            .check(&StabilityQuery::new(concept, &g, alpha))
            .unwrap();
        let got = verdict
            .witness()
            .map(ToString::to_string)
            .unwrap_or_default();
        assert_eq!(
            got,
            field("witness"),
            "{concept} witness drifted on {} (α = {alpha})",
            field("family")
        );
        if let Some(mv) = verdict.witness() {
            assert!(delta::move_improves_all(&g, alpha, mv).unwrap());
        }
        checked += 1;
    }
    assert_eq!(checked, 9, "golden corpus must stay complete");
}
