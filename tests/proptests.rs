//! Property-based tests (proptest) on the reproduction's core invariants:
//! the dual delta engines agree, canonical forms are isomorphism
//! invariants, costs obey the model's algebra, and checkers' witnesses
//! always replay.

use bncg::core::{agent_cost, concepts, delta, optimum_cost, social_cost, Alpha, Concept, Move};
use bncg::graph::{generators, graph6, iso, DistanceMatrix, Graph};
use proptest::prelude::*;

/// A random labeled tree via a Prüfer sequence.
fn tree_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(0..n as u32, n - 2)
            .prop_map(move |seq| generators::tree_from_pruefer(n, &seq))
    })
}

/// A random connected graph: tree plus extra edges chosen by mask.
fn connected_graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (tree_strategy(max_n), any::<u64>()).prop_map(|(mut g, mask)| {
        let non_edges: Vec<(u32, u32)> = g.non_edges().collect();
        for (i, (u, v)) in non_edges.into_iter().enumerate().take(60) {
            if mask >> (i % 64) & 1 == 1 && i % 3 == 0 {
                g.add_edge(u, v).expect("non-edge");
            }
        }
        g
    })
}

fn alpha_strategy() -> impl Strategy<Value = Alpha> {
    (1i64..=400, 1i64..=4).prop_map(|(num, den)| Alpha::from_ratio(num, den).expect("positive"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fast_add_engine_matches_generic(g in connected_graph_strategy(12), alpha in alpha_strategy()) {
        let d = DistanceMatrix::new(&g);
        for (u, v) in g.non_edges().take(20) {
            let fast = delta::cost_after_add(&g, &d, u, v);
            let g2 = Move::BilateralAdd { u, v }.apply(&g).unwrap();
            prop_assert_eq!(fast, agent_cost(&g2, u));
            // And the improvement predicate agrees under any α.
            let old = agent_cost(&g, u);
            prop_assert_eq!(
                fast.better_than(&old, alpha),
                agent_cost(&g2, u).better_than(&old, alpha)
            );
        }
    }

    #[test]
    fn tree_swap_engine_matches_generic(g in tree_strategy(12)) {
        let d = DistanceMatrix::new(&g);
        for agent in 0..g.n() as u32 {
            for &old in g.neighbors(agent) {
                for new in 0..g.n() as u32 {
                    if new == agent || g.has_edge(agent, new) {
                        continue;
                    }
                    let mv = Move::Swap { agent, old, new };
                    let g2 = mv.apply(&g).unwrap();
                    match delta::tree_swap_costs(&g, &d, agent, old, new) {
                        Some((ca, cn)) => {
                            prop_assert_eq!(ca, agent_cost(&g2, agent));
                            prop_assert_eq!(cn, agent_cost(&g2, new));
                        }
                        None => prop_assert!(agent_cost(&g2, agent).unreachable > 0),
                    }
                }
            }
        }
    }

    #[test]
    fn canonical_tree_encoding_is_invariant(g in tree_strategy(12), seed in any::<u64>()) {
        let mut rng = bncg::graph::test_rng(seed);
        let perm = generators::random_permutation(g.n(), &mut rng);
        let h = g.relabeled(&perm);
        prop_assert_eq!(
            iso::canonical_tree_encoding(&g),
            iso::canonical_tree_encoding(&h)
        );
        prop_assert!(iso::are_isomorphic(&g, &h));
    }

    #[test]
    fn graph6_roundtrips(g in connected_graph_strategy(14)) {
        let enc = graph6::encode(&g).unwrap();
        prop_assert_eq!(graph6::decode(&enc).unwrap(), g);
    }

    #[test]
    fn social_optimum_formula_is_a_true_minimum(
        g in connected_graph_strategy(9),
        alpha in alpha_strategy()
    ) {
        let cost = social_cost(&g, alpha).unwrap();
        prop_assert!(cost >= optimum_cost(g.n(), alpha));
    }

    #[test]
    fn checker_witnesses_always_replay(
        g in connected_graph_strategy(8),
        alpha in alpha_strategy()
    ) {
        for concept in [Concept::Re, Concept::Bae, Concept::Ps, Concept::Bswe, Concept::Bge] {
            if let Some(mv) = concept.find_violation(&g, alpha).unwrap() {
                prop_assert!(
                    delta::move_improves_all(&g, alpha, &mv).unwrap(),
                    "non-improving witness from {} on {:?}", concept, g
                );
            }
        }
    }

    #[test]
    fn lattice_subsets_hold_on_random_instances(
        g in connected_graph_strategy(7),
        alpha in alpha_strategy()
    ) {
        let ps = concepts::ps::is_stable(&g, alpha);
        let re = concepts::re::is_stable(&g, alpha);
        let bae = concepts::bae::is_stable(&g, alpha);
        let bge = concepts::bge::is_stable(&g, alpha);
        let bswe = concepts::bswe::is_stable(&g, alpha);
        prop_assert_eq!(ps, re && bae);
        prop_assert_eq!(bge, ps && bswe);
        if Concept::Bne.is_stable(&g, alpha).unwrap() {
            prop_assert!(bge && bae);
        }
        if Concept::KBse(3).is_stable(&g, alpha).unwrap() {
            prop_assert!(Concept::KBse(2).is_stable(&g, alpha).unwrap());
        }
        if Concept::KBse(2).is_stable(&g, alpha).unwrap() {
            prop_assert!(bge);
        }
    }

    #[test]
    fn removing_then_adding_is_identity(g in tree_strategy(10)) {
        let (u, v) = g.edges().next().unwrap();
        let removed = Move::Remove { agent: u, target: v }.apply(&g).unwrap();
        let restored = Move::BilateralAdd { u, v }.apply(&removed).unwrap();
        prop_assert_eq!(restored, g);
    }

    #[test]
    fn tree_cost_identities(g in tree_strategy(14), alpha in alpha_strategy()) {
        // Σ_u dist(u) from the rerooting engine equals the matrix total,
        // and social cost = α·2m + total distance.
        let t = bncg::graph::RootedTree::new(&g, 0).unwrap();
        let total: u64 = t.dist_sums().iter().sum();
        let d = DistanceMatrix::new(&g);
        prop_assert_eq!(total, d.total_distance().unwrap());
        let cost = social_cost(&g, alpha).unwrap();
        let expected_num = i128::from(alpha.num()) * (2 * g.m() as i128)
            + i128::from(alpha.den()) * i128::from(total);
        prop_assert_eq!(
            cost,
            bncg::core::Ratio::new(expected_num, i128::from(alpha.den()))
        );
    }

    #[test]
    fn graph6_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..40)) {
        // Arbitrary input must be rejected gracefully, never crash.
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = graph6::decode(s);
        }
    }

    #[test]
    fn alpha_ordering_is_total_and_consistent(
        a in (1i64..10_000, 1i64..100),
        b in (1i64..10_000, 1i64..100)
    ) {
        let x = Alpha::from_ratio(a.0, a.1).unwrap();
        let y = Alpha::from_ratio(b.0, b.1).unwrap();
        // Ordering agrees with exact cross multiplication.
        let lhs = i128::from(x.num()) * i128::from(y.den());
        let rhs = i128::from(y.num()) * i128::from(x.den());
        prop_assert_eq!(x.cmp(&y), lhs.cmp(&rhs));
        // Display → parse roundtrip.
        let reparsed: Alpha = x.to_string().parse().unwrap();
        prop_assert_eq!(x, reparsed);
        // cost_key is monotone in both coordinates.
        prop_assert!(x.cost_key(2, 10) > x.cost_key(1, 10));
        prop_assert!(x.cost_key(1, 11) > x.cost_key(1, 10));
    }

    #[test]
    fn bilateral_re_iff_unilateral_re_for_all_assignments(
        g in connected_graph_strategy(6),
        alpha in alpha_strategy()
    ) {
        // Proposition 2.2 as a property.
        let bilateral = concepts::re::is_stable(&g, alpha);
        let unilateral_all = bncg::core::unilateral::UnilateralState::all_assignments(&g)
            .unwrap()
            .iter()
            .all(|s| s.is_remove_stable(alpha));
        prop_assert_eq!(bilateral, unilateral_all);
    }

    #[test]
    fn bridges_never_yield_re_violations(
        g in connected_graph_strategy(10),
        alpha in alpha_strategy()
    ) {
        // The optimization behind the RE checker: removing a bridge is
        // never improving (reachability is lexicographically first).
        for (u, v) in bncg::graph::connectivity::analyze(&g).bridges {
            for (agent, target) in [(u, v), (v, u)] {
                let mv = Move::Remove { agent, target };
                prop_assert!(!delta::move_improves_all(&g, alpha, &mv).unwrap());
            }
        }
    }

    #[test]
    fn one_median_minimizes_and_splits(g in tree_strategy(14)) {
        // The 1-median minimizes the distance sum AND leaves components of
        // size ≤ n/2 (the paper uses both characterizations).
        let medians = bncg::graph::tree_medians(&g).unwrap();
        let t = bncg::graph::RootedTree::new(&g, 0).unwrap();
        let sums = t.dist_sums();
        let min = *sums.iter().min().unwrap();
        for &m in &medians {
            prop_assert_eq!(sums[m as usize], min);
            let rooted = bncg::graph::RootedTree::new(&g, m).unwrap();
            for &c in rooted.children(m) {
                prop_assert!(rooted.subtree_size(c) as usize * 2 <= g.n());
            }
        }
    }
}
