//! Property-based tests on the reproduction's core invariants: the engine
//! and the generic recomputation agree, canonical forms are isomorphism
//! invariants, costs obey the model's algebra, and checkers' witnesses
//! always replay.
//!
//! The build container is offline, so instead of the `proptest` crate this
//! file drives a small seeded-case harness: every property runs over a
//! fixed number of pseudo-random cases drawn from the workspace RNG, which
//! keeps failures reproducible from the printed seed.

use bncg::core::{
    agent_cost, concepts, delta, optimum_cost, social_cost, Alpha, Concept, GameState, Move,
};
use bncg::graph::{generators, graph6, iso, DistanceMatrix, Graph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// Runs `f` on `CASES` independently seeded RNGs, naming the seed on panic.
fn prop(name: &str, mut f: impl FnMut(&mut SmallRng)) {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB11C_u64 ^ (seed * 0x9E37_79B9));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        assert!(result.is_ok(), "property `{name}` failed at seed {seed}");
    }
}

/// A random labeled tree on 3..=max_n nodes.
fn random_tree(max_n: usize, rng: &mut SmallRng) -> Graph {
    let n = rng.gen_range(3..=max_n);
    generators::random_tree(n, rng)
}

/// A random connected graph: tree plus some extra edges.
fn random_connected(max_n: usize, rng: &mut SmallRng) -> Graph {
    let n = rng.gen_range(3..=max_n);
    generators::random_connected(n, 0.25, rng)
}

/// A random positive rational price.
fn random_alpha(rng: &mut SmallRng) -> Alpha {
    Alpha::from_ratio(rng.gen_range(1..=400i64), rng.gen_range(1..=4i64)).expect("positive")
}

/// A random valid move of any of the five kinds, or `None` when the graph
/// offers no candidate of the drawn kind.
fn random_move(g: &Graph, rng: &mut SmallRng) -> Option<Move> {
    let n = g.n() as u32;
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let non_edges: Vec<(u32, u32)> = g.non_edges().collect();
    match rng.gen_range(0..5u32) {
        0 => {
            let &(u, v) = pick(&edges, rng)?;
            let (agent, target) = if rng.gen_bool(0.5) { (u, v) } else { (v, u) };
            Some(Move::Remove { agent, target })
        }
        1 => {
            let &(u, v) = pick(&non_edges, rng)?;
            Some(Move::BilateralAdd { u, v })
        }
        2 => {
            let &(agent, old) = pick(&edges, rng)?;
            let candidates: Vec<u32> = (0..n)
                .filter(|&w| w != agent && !g.has_edge(agent, w))
                .collect();
            let &new = pick(&candidates, rng)?;
            Some(Move::Swap { agent, old, new })
        }
        3 => {
            let center = rng.gen_range(0..n);
            let mut remove: Vec<u32> = g
                .neighbors(center)
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(0.4))
                .collect();
            let add: Vec<u32> = (0..n)
                .filter(|&w| w != center && !g.has_edge(center, w) && rng.gen_bool(0.3))
                .collect();
            if remove.is_empty() && add.is_empty() {
                remove = g.neighbors(center).first().copied().into_iter().collect();
            }
            if remove.is_empty() && add.is_empty() {
                return None;
            }
            Some(Move::Neighborhood {
                center,
                remove,
                add,
            })
        }
        _ => {
            let mut members: Vec<u32> = (0..n).filter(|_| rng.gen_bool(0.4)).collect();
            if members.len() < 2 {
                members = vec![0, n - 1];
            }
            let in_coalition = |x: u32| members.contains(&x);
            let remove_edges: Vec<(u32, u32)> = edges
                .iter()
                .copied()
                .filter(|&(u, v)| (in_coalition(u) || in_coalition(v)) && rng.gen_bool(0.3))
                .collect();
            let add_edges: Vec<(u32, u32)> = non_edges
                .iter()
                .copied()
                .filter(|&(u, v)| in_coalition(u) && in_coalition(v) && rng.gen_bool(0.3))
                .collect();
            if remove_edges.is_empty() && add_edges.is_empty() {
                return None;
            }
            Some(Move::Coalition {
                members,
                remove_edges,
                add_edges,
            })
        }
    }
}

fn pick<'a, T>(items: &'a [T], rng: &mut SmallRng) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        items.get(rng.gen_range(0..items.len()))
    }
}

/// ISSUE property 1: `GameState::evaluate_move` equals a from-scratch
/// `agent_cost` recomputation on the mutated graph, for random graphs and
/// random moves of every kind.
#[test]
fn evaluate_move_matches_scratch_recomputation() {
    prop("evaluate_move_matches_scratch", |rng| {
        let g = if rng.gen_bool(0.3) {
            random_tree(10, rng)
        } else {
            random_connected(10, rng)
        };
        let alpha = random_alpha(rng);
        let state = GameState::new(g.clone(), alpha);
        let mut ev = state.evaluator();
        for _ in 0..8 {
            let Some(mv) = random_move(&g, rng) else {
                continue;
            };
            let delta = ev.evaluate(&mv).expect("generated moves are valid");
            let g2 = mv.apply(&g).expect("generated moves are valid");
            for d in &delta.agents {
                assert_eq!(d.before, agent_cost(&g, d.agent), "stale before on {mv}");
                assert_eq!(d.after, agent_cost(&g2, d.agent), "wrong after on {mv}");
            }
            assert_eq!(
                delta.improving_all,
                delta::move_improves_all(&g, alpha, &mv).unwrap(),
                "predicate mismatch on {mv}"
            );
        }
    });
}

/// ISSUE property 2: `DistanceMatrix::apply_edge_toggle` equals
/// `DistanceMatrix::new` on the mutated graph, through long toggle chains
/// (including disconnections and reconnections).
#[test]
fn apply_edge_toggle_matches_rebuild() {
    prop("apply_edge_toggle_matches_rebuild", |rng| {
        let n = rng.gen_range(2..=12usize);
        let mut g = generators::gnp(n, 0.3, rng);
        let mut d = DistanceMatrix::new(&g);
        for _ in 0..15 {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u == v {
                continue;
            }
            g.toggle_edge(u, v).unwrap();
            d.apply_edge_toggle(&g, u, v);
            assert_eq!(d, DistanceMatrix::new(&g), "matrix drift at {{{u}, {v}}}");
        }
    });
}

/// Applying random moves through `GameState::apply_move` never lets the
/// caches drift from a from-scratch recomputation.
#[test]
fn game_state_caches_never_drift() {
    prop("game_state_caches_never_drift", |rng| {
        let g = random_connected(9, rng);
        let mut state = GameState::new(g, random_alpha(rng));
        for _ in 0..10 {
            let Some(mv) = random_move(&state.graph().clone(), rng) else {
                continue;
            };
            state.apply_move(&mv).expect("generated moves are valid");
            assert_eq!(*state.distances(), DistanceMatrix::new(state.graph()));
            for u in 0..state.n() as u32 {
                assert_eq!(state.cost(u), agent_cost(state.graph(), u));
            }
            assert_eq!(state.is_tree(), state.graph().is_tree());
        }
    });
}

#[test]
fn fast_add_engine_matches_generic() {
    prop("fast_add_engine_matches_generic", |rng| {
        let g = random_connected(12, rng);
        let alpha = random_alpha(rng);
        let d = DistanceMatrix::new(&g);
        for (u, v) in g.non_edges().take(20) {
            let fast = delta::cost_after_add(&g, &d, u, v);
            let g2 = Move::BilateralAdd { u, v }.apply(&g).unwrap();
            assert_eq!(fast, agent_cost(&g2, u));
            let old = agent_cost(&g, u);
            assert_eq!(
                fast.better_than(&old, alpha),
                agent_cost(&g2, u).better_than(&old, alpha)
            );
        }
    });
}

#[test]
fn tree_swap_engine_matches_generic() {
    prop("tree_swap_engine_matches_generic", |rng| {
        let g = random_tree(12, rng);
        let d = DistanceMatrix::new(&g);
        for agent in 0..g.n() as u32 {
            for &old in g.neighbors(agent) {
                for new in 0..g.n() as u32 {
                    if new == agent || g.has_edge(agent, new) {
                        continue;
                    }
                    let mv = Move::Swap { agent, old, new };
                    let g2 = mv.apply(&g).unwrap();
                    match delta::tree_swap_costs(&g, &d, agent, old, new) {
                        Some((ca, cn)) => {
                            assert_eq!(ca, agent_cost(&g2, agent));
                            assert_eq!(cn, agent_cost(&g2, new));
                        }
                        None => assert!(agent_cost(&g2, agent).unreachable > 0),
                    }
                }
            }
        }
    });
}

#[test]
fn canonical_tree_encoding_is_invariant() {
    prop("canonical_tree_encoding_is_invariant", |rng| {
        let g = random_tree(12, rng);
        let perm = generators::random_permutation(g.n(), rng);
        let h = g.relabeled(&perm);
        assert_eq!(
            iso::canonical_tree_encoding(&g),
            iso::canonical_tree_encoding(&h)
        );
        assert!(iso::are_isomorphic(&g, &h));
    });
}

#[test]
fn graph6_roundtrips() {
    prop("graph6_roundtrips", |rng| {
        let g = random_connected(14, rng);
        let enc = graph6::encode(&g).unwrap();
        assert_eq!(graph6::decode(&enc).unwrap(), g);
    });
}

#[test]
fn social_optimum_formula_is_a_true_minimum() {
    prop("social_optimum_formula_is_a_true_minimum", |rng| {
        let g = random_connected(9, rng);
        let alpha = random_alpha(rng);
        let cost = social_cost(&g, alpha).unwrap();
        assert!(cost >= optimum_cost(g.n(), alpha));
    });
}

#[test]
fn checker_witnesses_always_replay() {
    prop("checker_witnesses_always_replay", |rng| {
        let g = random_connected(8, rng);
        let alpha = random_alpha(rng);
        for concept in [
            Concept::Re,
            Concept::Bae,
            Concept::Ps,
            Concept::Bswe,
            Concept::Bge,
        ] {
            if let Some(mv) = concept.find_violation(&g, alpha).unwrap() {
                assert!(
                    delta::move_improves_all(&g, alpha, &mv).unwrap(),
                    "non-improving witness from {concept} on {g:?}"
                );
            }
        }
    });
}

#[test]
fn lattice_subsets_hold_on_random_instances() {
    prop("lattice_subsets_hold_on_random_instances", |rng| {
        let g = random_connected(7, rng);
        let alpha = random_alpha(rng);
        // One state serves every checker of the ladder.
        let state = GameState::new(g.clone(), alpha);
        let ps = concepts::ps::find_violation_in(&state).is_none();
        let re = concepts::re::find_violation_in(&state).is_none();
        let bae = concepts::bae::find_violation_in(&state).is_none();
        let bge = concepts::bge::find_violation_in(&state).is_none();
        let bswe = concepts::bswe::find_violation_in(&state).is_none();
        assert_eq!(ps, re && bae);
        assert_eq!(bge, ps && bswe);
        if Concept::Bne.is_stable_in(&state).unwrap() {
            assert!(bge && bae);
        }
        if Concept::KBse(3).is_stable_in(&state).unwrap() {
            assert!(Concept::KBse(2).is_stable_in(&state).unwrap());
        }
        if Concept::KBse(2).is_stable_in(&state).unwrap() {
            assert!(bge);
        }
    });
}

#[test]
fn removing_then_adding_is_identity() {
    prop("removing_then_adding_is_identity", |rng| {
        let g = random_tree(10, rng);
        let (u, v) = g.edges().next().unwrap();
        let removed = Move::Remove {
            agent: u,
            target: v,
        }
        .apply(&g)
        .unwrap();
        let restored = Move::BilateralAdd { u, v }.apply(&removed).unwrap();
        assert_eq!(restored, g);
    });
}

#[test]
fn tree_cost_identities() {
    prop("tree_cost_identities", |rng| {
        let g = random_tree(14, rng);
        let alpha = random_alpha(rng);
        let t = bncg::graph::RootedTree::new(&g, 0).unwrap();
        let total: u64 = t.dist_sums().iter().sum();
        let d = DistanceMatrix::new(&g);
        assert_eq!(total, d.total_distance().unwrap());
        let cost = social_cost(&g, alpha).unwrap();
        let expected_num = i128::from(alpha.num()) * (2 * g.m() as i128)
            + i128::from(alpha.den()) * i128::from(total);
        assert_eq!(
            cost,
            bncg::core::Ratio::new(expected_num, i128::from(alpha.den()))
        );
    });
}

#[test]
fn graph6_decode_never_panics() {
    prop("graph6_decode_never_panics", |rng| {
        let len = rng.gen_range(0..40usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = graph6::decode(s);
        }
    });
}

#[test]
fn alpha_ordering_is_total_and_consistent() {
    prop("alpha_ordering_is_total_and_consistent", |rng| {
        let x = Alpha::from_ratio(rng.gen_range(1..10_000i64), rng.gen_range(1..100i64)).unwrap();
        let y = Alpha::from_ratio(rng.gen_range(1..10_000i64), rng.gen_range(1..100i64)).unwrap();
        let lhs = i128::from(x.num()) * i128::from(y.den());
        let rhs = i128::from(y.num()) * i128::from(x.den());
        assert_eq!(x.cmp(&y), lhs.cmp(&rhs));
        let reparsed: Alpha = x.to_string().parse().unwrap();
        assert_eq!(x, reparsed);
        assert!(x.cost_key(2, 10) > x.cost_key(1, 10));
        assert!(x.cost_key(1, 11) > x.cost_key(1, 10));
    });
}

#[test]
fn bilateral_re_iff_unilateral_re_for_all_assignments() {
    prop("bilateral_re_iff_unilateral_re", |rng| {
        let g = random_connected(6, rng);
        let alpha = random_alpha(rng);
        let bilateral = concepts::re::is_stable(&g, alpha);
        let unilateral_all = bncg::core::unilateral::UnilateralState::all_assignments(&g)
            .unwrap()
            .iter()
            .all(|s| s.is_remove_stable(alpha));
        assert_eq!(bilateral, unilateral_all);
    });
}

#[test]
fn bridges_never_yield_re_violations() {
    prop("bridges_never_yield_re_violations", |rng| {
        let g = random_connected(10, rng);
        let alpha = random_alpha(rng);
        for (u, v) in bncg::graph::connectivity::analyze(&g).bridges {
            for (agent, target) in [(u, v), (v, u)] {
                let mv = Move::Remove { agent, target };
                assert!(!delta::move_improves_all(&g, alpha, &mv).unwrap());
            }
        }
    });
}

#[test]
fn one_median_minimizes_and_splits() {
    prop("one_median_minimizes_and_splits", |rng| {
        let g = random_tree(14, rng);
        let medians = bncg::graph::tree_medians(&g).unwrap();
        let t = bncg::graph::RootedTree::new(&g, 0).unwrap();
        let sums = t.dist_sums();
        let min = *sums.iter().min().unwrap();
        for &m in &medians {
            assert_eq!(sums[m as usize], min);
            let rooted = bncg::graph::RootedTree::new(&g, m).unwrap();
            for &c in rooted.children(m) {
                assert!(rooted.subtree_size(c) as usize * 2 <= g.n());
            }
        }
    });
}
