//! Property tests for the candidate-pruning layer (PR 2): every pruned
//! checker must be **exactness-preserving** against the raw `*_reference`
//! enumeration it replaced — same stability verdict on every instance,
//! and (where the scans share enumeration order: BNE, BSE) the *same
//! first violation*, which makes the first-violation cost delta equal by
//! construction. The k-BSE scan reorders candidates across coalitions, so
//! there the verdict is compared and both witnesses must replay as
//! strictly improving moves of ≤ k members.
//!
//! Seeded-case harness as in `proptests.rs` (the container is offline, so
//! no `proptest` crate): failures reproduce from the printed seed.

// These are the retained reference tests for the deprecated per-concept
// wrappers: they must keep exercising the legacy entry points (now thin
// shims over `bncg_core::solver`) against the raw reference scans.
#![allow(deprecated)]

use bncg::core::{concepts, delta, Alpha, CheckBudget, GameState, Move};
use bncg::graph::generators;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;

fn prop(name: &str, mut f: impl FnMut(&mut SmallRng)) {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9121_u64 ^ (seed * 0x9E37_79B9));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        assert!(result.is_ok(), "property `{name}` failed at seed {seed}");
    }
}

/// The ISSUE's α grid: below 1, above 1, and at the scale of n.
fn alpha_grid(n: usize) -> Vec<Alpha> {
    vec![
        Alpha::from_ratio(1, 2).unwrap(),
        Alpha::integer(2).unwrap(),
        Alpha::integer(n as i64).unwrap(),
    ]
}

fn random_instance(max_n: usize, rng: &mut SmallRng) -> bncg::graph::Graph {
    let n = rng.gen_range(4..=max_n);
    if rng.gen_bool(0.4) {
        generators::random_tree(n, rng)
    } else {
        generators::random_connected(n, 0.3, rng)
    }
}

#[test]
fn bne_pruned_equals_unpruned_with_identical_witness() {
    let budget = CheckBudget::default();
    prop("bne pruned == unpruned", |rng| {
        let g = random_instance(14, rng);
        for alpha in alpha_grid(g.n()) {
            let state = GameState::new(g.clone(), alpha);
            let pruned =
                bncg::core::compat::bne::find_violation_in_with_budget(&state, budget).unwrap();
            let raw = concepts::bne::find_violation_in_reference(&state, budget).unwrap();
            // Shared enumeration order + sound filters ⇒ identical first
            // violation, hence identical first-violation cost delta.
            assert_eq!(pruned, raw, "BNE witness diverged at α = {alpha}");
            if let Some(mv) = pruned {
                assert!(delta::move_improves_all(&g, alpha, &mv).unwrap());
            }
        }
    });
}

#[test]
fn bse_pruned_equals_unpruned_with_identical_witness() {
    let budget = CheckBudget::default();
    prop("bse pruned == unpruned", |rng| {
        let g = random_instance(6, rng);
        for alpha in alpha_grid(g.n()) {
            let state = GameState::new(g.clone(), alpha);
            let pruned =
                bncg::core::compat::bse::find_violation_in_with_budget(&state, budget).unwrap();
            let raw = concepts::bse::find_violation_in_reference(&state, budget).unwrap();
            assert_eq!(pruned, raw, "BSE witness diverged at α = {alpha}");
            if let Some(mv) = pruned {
                assert!(delta::move_improves_all(&g, alpha, &mv).unwrap());
            }
        }
    });
}

#[test]
fn kbse_pruned_equals_unpruned_verdict_and_both_witnesses_replay() {
    let budget = CheckBudget::default();
    prop("kbse pruned == unpruned", |rng| {
        let g = random_instance(8, rng);
        for alpha in alpha_grid(g.n()) {
            let state = GameState::new(g.clone(), alpha);
            for k in [2usize, 3] {
                let pruned =
                    bncg::core::compat::kbse::find_violation_in_with_budget(&state, k, budget)
                        .unwrap();
                let raw = concepts::kbse::find_violation_in_reference(&state, k, budget).unwrap();
                assert_eq!(
                    pruned.is_some(),
                    raw.is_some(),
                    "k-BSE verdict diverged at α = {alpha}, k = {k}"
                );
                for mv in [&pruned, &raw].into_iter().flatten() {
                    assert!(
                        delta::move_improves_all(&g, alpha, mv).unwrap(),
                        "witness {mv} does not replay"
                    );
                    if let Move::Coalition { members, .. } = mv {
                        assert!(members.len() <= k, "coalition exceeds k");
                    }
                }
            }
        }
    });
}

#[test]
fn parallel_scans_match_sequential_witnesses() {
    let budget = CheckBudget::default();
    prop("parallel == sequential", |rng| {
        let g = random_instance(8, rng);
        let alpha = Alpha::integer(2).unwrap();
        let state = GameState::new(g.clone(), alpha);
        let bne = bncg::core::compat::bne::find_violation_in_with_budget(&state, budget).unwrap();
        let kbse =
            bncg::core::compat::kbse::find_violation_in_with_budget(&state, 3, budget).unwrap();
        for threads in [2usize, 3] {
            assert_eq!(
                bne,
                bncg::core::compat::bne::find_violation_in_parallel(&state, budget, threads)
                    .unwrap()
            );
            assert_eq!(
                kbse,
                bncg::core::compat::kbse::find_violation_in_parallel(&state, 3, budget, threads)
                    .unwrap()
            );
        }
        if g.n() <= 6 {
            let bse =
                bncg::core::compat::bse::find_violation_in_with_budget(&state, budget).unwrap();
            assert_eq!(
                bse,
                bncg::core::compat::bse::find_violation_in_parallel(&state, budget, 4).unwrap()
            );
        }
    });
}

#[test]
fn restricted_kbse_serial_and_parallel_share_one_iterator() {
    prop("restricted serial == parallel", |rng| {
        let g = random_instance(9, rng);
        for alpha in alpha_grid(g.n()) {
            let serial = concepts::kbse::find_violation_restricted(&g, alpha, 2, 2);
            for threads in [1usize, 2, 4] {
                let parallel =
                    concepts::kbse::find_violation_restricted_parallel(&g, alpha, 2, 2, threads);
                assert_eq!(
                    serial, parallel,
                    "restricted witness diverged at α = {alpha}"
                );
            }
        }
    });
}

/// The inequality-6 caps fed to the restricted refuter are
/// exactness-preserving: wherever the restricted and unrestricted paths
/// both apply, they agree. With a non-binding removal cap the restricted
/// scan covers the full space, so its verdict must equal the exact
/// checker's; with a binding cap it scans a subspace, so exact-stable
/// forces restricted-none, an exact witness inside the cap forces a
/// restricted find, and every restricted witness replays.
#[test]
fn restricted_caps_agree_with_the_unrestricted_path_where_both_apply() {
    prop("restricted ineq-6 caps are exact", |rng| {
        let g = random_instance(7, rng);
        for alpha in alpha_grid(g.n()) {
            for k in [2usize, 3] {
                let exact = concepts::kbse::find_violation(&g, alpha, k).unwrap();
                // Non-binding cap: the restricted space is the full
                // space, so the verdicts must coincide.
                let unrestricted = concepts::kbse::find_violation_restricted(&g, alpha, k, g.m());
                assert_eq!(
                    exact.is_some(),
                    unrestricted.is_some(),
                    "unbound restricted scan diverged at α = {alpha}, k = {k}"
                );
                // Binding cap: one-sided agreement on the shared space.
                let capped = concepts::kbse::find_violation_restricted(&g, alpha, k, 1);
                match &exact {
                    None => assert!(
                        capped.is_none(),
                        "restricted refuted a stable instance at α = {alpha}, k = {k}"
                    ),
                    Some(Move::Coalition { remove_edges, .. }) if remove_edges.len() <= 1 => {
                        assert!(
                            capped.is_some(),
                            "exact witness lies inside the cap but the capped \
                             scan missed it at α = {alpha}, k = {k}"
                        );
                    }
                    Some(_) => {}
                }
                if let Some(mv) = capped {
                    assert!(delta::move_improves_all(&g, alpha, &mv).unwrap());
                }
            }
        }
    });
}

/// The pruned best response must still find the *optimal* feasible move:
/// cross-check against a from-scratch unpruned enumeration in the
/// scan's documented addition-mask-major order, so ties (distinct moves
/// with equal cost keys) resolve to the identical `(edges, dist)` pair
/// the metered scan commits to.
#[test]
fn best_response_pruning_preserves_the_optimum() {
    use bncg::core::{agent_cost, best_response, AgentCost};
    prop("best response optimal", |rng| {
        let g = random_instance(8, rng);
        let n = g.n() as u32;
        for alpha in alpha_grid(g.n()) {
            for u in 0..n {
                let br = best_response(&g, alpha, u).unwrap();
                // Naive scan: every (addition set, removal set) pair.
                let neighbors: Vec<u32> = g.neighbors(u).to_vec();
                let others: Vec<u32> = (0..n).filter(|&v| v != u && !g.has_edge(u, v)).collect();
                let old: Vec<AgentCost> = (0..n).map(|w| agent_cost(&g, w)).collect();
                let mut best: AgentCost = old[u as usize];
                for add_mask in 0u64..1 << others.len() {
                    for rem_mask in 0u64..1 << neighbors.len() {
                        if rem_mask == 0 && add_mask == 0 {
                            continue;
                        }
                        let remove: Vec<u32> = neighbors
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| rem_mask >> i & 1 == 1)
                            .map(|(_, &v)| v)
                            .collect();
                        let add: Vec<u32> = others
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| add_mask >> i & 1 == 1)
                            .map(|(_, &v)| v)
                            .collect();
                        let mv = Move::Neighborhood {
                            center: u,
                            remove,
                            add: add.clone(),
                        };
                        let g2 = mv.apply(&g).unwrap();
                        let mine = agent_cost(&g2, u);
                        let feasible = mine.better_than(&best, alpha)
                            && add
                                .iter()
                                .all(|&a| agent_cost(&g2, a).better_than(&old[a as usize], alpha));
                        if feasible {
                            best = mine;
                        }
                    }
                }
                assert_eq!(br.cost, best, "pruned best response is suboptimal for {u}");
            }
        }
    });
}
