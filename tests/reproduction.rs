//! End-to-end integration tests: the paper's headline claims exercised
//! through the public facade, spanning all member crates.

use bncg::constructions::figures::{figure5, figure6, figure7};
use bncg::constructions::stretched::{theorem_3_10_instance, StretchedBinaryTree};
use bncg::core::{bounds, concepts, delta, social_cost_ratio, Alpha, Concept, Game};
use bncg::graph::{enumerate, generators};

fn a(s: &str) -> Alpha {
    s.parse().unwrap()
}

#[test]
fn cooperation_ladder_is_monotone_on_exhaustive_trees() {
    // The paper's central narrative: PoA weakly improves with cooperation.
    // Quantify over ALL trees on 8 nodes and a price grid.
    for alpha in ["1", "2", "4", "8", "16"] {
        let alpha = a(alpha);
        let ladder = [
            Concept::Ps,
            Concept::Bge,
            Concept::Bne,
            Concept::KBse(2),
            Concept::KBse(3),
        ];
        let mut prev = f64::INFINITY;
        for (i, concept) in ladder.iter().enumerate() {
            let point = bncg::analysis::empirical::tree_poa(8, alpha, *concept).unwrap();
            let rho = point.max_rho.unwrap_or(1.0);
            // BNE ⊆ BGE and k-BSE ⊆ BGE, but BNE and k-BSE are mutually
            // incomparable — compare only along chains.
            if i != 3 {
                assert!(
                    rho <= prev + 1e-12,
                    "PoA must not increase along the chain at α = {alpha}"
                );
                prev = rho;
            }
        }
    }
}

#[test]
fn table_one_asymptotic_ordering_appears_at_scale() {
    // PS tolerates a polynomially-bad tree family (spiders), BGE only a
    // logarithmically-bad one (stretched tree stars). Compare both
    // families at the same α and observe PS's witness is worse.
    let alpha_v = 480usize;
    let alpha = a("480");
    // Spider family: PS-stable at this α (adds too expensive).
    let spider = generators::spider(16, 16); // n = 257
    assert!(concepts::ps::is_stable(&spider, alpha));
    let rho_spider = social_cost_ratio(&spider, alpha).unwrap().as_f64();
    // BGE family from Theorem 3.10.
    let star = theorem_3_10_instance(alpha_v, alpha_v);
    assert!(concepts::bge::is_stable(&star.graph, alpha));
    let rho_star = social_cost_ratio(&star.graph, alpha).unwrap().as_f64();
    // The spider is NOT swap-stable — swaps dissolve the bad PS state.
    assert!(concepts::bswe::find_violation(&spider, alpha).is_some());
    assert!(
        rho_spider > rho_star,
        "PS's worst family ({rho_spider:.2}) must beat BGE's ({rho_star:.2})"
    );
}

#[test]
fn figure_witnesses_hold_through_the_facade() {
    let f5 = figure5();
    assert!(concepts::bge::is_stable(&f5.graph, f5.alpha));
    assert!(delta::move_improves_all(&f5.graph, f5.alpha, f5.violation.as_ref().unwrap()).unwrap());

    let f6 = figure6();
    assert!(concepts::bne::is_stable(&f6.graph, f6.alpha).unwrap());
    assert!(delta::move_improves_all(&f6.graph, f6.alpha, f6.violation.as_ref().unwrap()).unwrap());

    let f7 = figure7(8);
    assert!(delta::move_improves_all(&f7.graph, f7.alpha, f7.violation.as_ref().unwrap()).unwrap());
}

#[test]
fn dynamics_reach_states_the_checkers_certify() {
    // Random improving-move dynamics can cycle forever (network creation
    // games are not potential games), so draw fresh starts until a run
    // converges and certify that reached state.
    let mut rng = bncg::graph::test_rng(99);
    for alpha in ["2", "5"] {
        let alpha = a(alpha);
        let mut certified = false;
        for _attempt in 0..5 {
            let start = generators::random_tree(12, &mut rng);
            let t = bncg::dynamics::run_with_rng(
                &start,
                alpha,
                Concept::Bge,
                bncg::dynamics::SelectionRule::Random,
                5_000,
                &mut rng,
            )
            .unwrap();
            if !t.converged {
                continue;
            }
            let game = Game::new(t.final_graph.clone(), alpha);
            assert!(game.is_stable(Concept::Bge).unwrap());
            // BGE trees obey Theorem 3.6's bound through Prop 3.7/BSwE.
            if t.final_graph.is_tree() {
                let rho = game.social_cost_ratio().unwrap().as_f64();
                assert!(rho <= bounds::theorem_3_6_bound(alpha) + 1e-9);
            }
            certified = true;
            break;
        }
        assert!(certified, "no dynamics run converged at α = {alpha}");
    }
}

#[test]
fn stretched_trees_certify_proposition_3_8_threshold() {
    for (d, k) in [(2usize, 1usize), (2, 2), (3, 1)] {
        let tree = StretchedBinaryTree::build(d, k);
        let n = tree.graph.n();
        let threshold = Alpha::integer((7 * k * n) as i64).unwrap();
        assert!(concepts::bge::is_stable(&tree.graph, threshold));
    }
}

#[test]
fn exhaustive_small_world_sanity() {
    // Every stable witness reported on the full 6-node corpus replays.
    let alphas: Vec<Alpha> = ["1/2", "1", "2", "4"].iter().map(|s| a(s)).collect();
    for g in enumerate::connected_graphs(5).unwrap() {
        for &alpha in &alphas {
            for concept in [Concept::Ps, Concept::Bge, Concept::Bne, Concept::KBse(3)] {
                if let Some(mv) = concept.find_violation(&g, alpha).unwrap() {
                    assert!(delta::move_improves_all(&g, alpha, &mv).unwrap());
                }
            }
        }
    }
}

#[test]
fn experiments_quick_suite_is_reproducible() {
    // The full quick suite must run clean through the public API and
    // contain every section (this is the EXPERIMENTS.md generator). The
    // solver policy threads the enumeration sweeps without changing any
    // verdict (witness determinism).
    let policy = bncg::core::solver::ExecPolicy::default().with_threads(2);
    let report = bncg::analysis::run_all(true, &policy).unwrap().render();
    for needle in [
        "Table 1 / PS",
        "Table 1 / BSwE",
        "Table 1 / BGE",
        "Table 1 / BNE",
        "Table 1 / 3-BSE",
        "Table 1 / BSE",
        "Figure 1a",
        "Figure 1b",
        "Figure 2",
        "Figure 3",
        "Figure 4",
        "Figure 5",
        "Figure 6",
        "Figure 7",
        "Figure 8",
        "Lemma 2.4",
        "Proposition 3.16",
        "Proposition 3.22",
        "cooperation ladder",
        "round-robin",
        "general graphs",
        "stability windows",
        "Ablation",
    ] {
        assert!(report.contains(needle), "missing section: {needle}");
    }
    assert!(!report.contains("NOT FOUND"));
}
