//! Property suite for the unified `Solver` query surface (ISSUE 3): the
//! anytime/resumable contract. A query stopped at an eval budget B and
//! resumed from its frontier — any number of times, at any B, at any
//! thread count — must return the **identical witness** (same
//! enumeration order) as one uninterrupted run, and
//! `GameError::CheckTooLarge` must be unreachable from the solver path.
//!
//! Extended for the metered dynamics surface (ISSUE 4) with the resume
//! laws of the two new anytime shapes: a chain of budgeted
//! **best-response** slices must return the identical move an
//! uninterrupted scan returns, a **checkpointed round-robin trajectory**
//! must resume to the identical move/fingerprint sequence and final
//! state, and a `check_many` batch draining one shared **budget pool**
//! must keep input order and resume cleanly to the unbudgeted verdicts.
//!
//! Seeded-case harness as in `proptests.rs` (the container is offline,
//! so no `proptest` crate): failures reproduce from the printed seed.

use bncg::core::solver::{ExecPolicy, Frontier, Solver, StabilityQuery, Verdict};
use bncg::core::{
    best_response_in, best_response_resume, best_response_with_policy, Alpha, BestResponseFrontier,
    BestResponseVerdict, CheckBudget, Concept, GameError, GameState, Move,
};
use bncg::dynamics::round_robin;
use bncg::graph::generators;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

const CASES: u64 = 12;

fn prop(name: &str, mut f: impl FnMut(&mut SmallRng)) {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x50_1E_u64 ^ (seed * 0x9E37_79B9));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        assert!(result.is_ok(), "property `{name}` failed at seed {seed}");
    }
}

/// The ISSUE's α grid: below 1, above 1, and at the scale of n.
fn alpha_grid(n: usize) -> Vec<Alpha> {
    vec![
        Alpha::from_ratio(1, 2).unwrap(),
        Alpha::integer(2).unwrap(),
        Alpha::integer(n as i64).unwrap(),
    ]
}

fn random_instance(max_n: usize, rng: &mut SmallRng) -> bncg::graph::Graph {
    let n = rng.gen_range(4..=max_n);
    if rng.gen_bool(0.4) {
        generators::random_tree(n, rng)
    } else {
        generators::random_connected(n, 0.3, rng)
    }
}

/// Drains a budgeted query to a conclusive verdict through resume
/// frontiers, asserting forward progress and JSON round-trips along the
/// way.
fn resolve_with_resume(solver: &Solver, concept: Concept, state: &GameState) -> Option<Move> {
    let mut query = StabilityQuery::on(concept, state);
    let mut previous: Option<Frontier> = None;
    let mut rounds = 0u32;
    loop {
        match solver.check(&query).unwrap() {
            Verdict::Stable { .. } => return None,
            Verdict::Unstable { witness, .. } => return Some(witness),
            Verdict::Exhausted { frontier, .. } => {
                // The frontier serializes and parses back bit-identically.
                let round_trip: Frontier = frontier.to_json().parse().unwrap();
                assert_eq!(round_trip, frontier, "frontier JSON round trip");
                // Every resumed slice must advance the frontier.
                assert_ne!(previous, Some(frontier), "resume made no progress");
                previous = Some(frontier);
                query = StabilityQuery::on(concept, state).resume(round_trip);
                rounds += 1;
                assert!(rounds < 100_000, "resume loop failed to terminate");
            }
        }
    }
}

#[test]
fn budgeted_resume_chain_returns_the_uninterrupted_witness() {
    prop("resume determinism", |rng| {
        let concepts = [
            (Concept::Bne, 9usize),
            (Concept::KBse(2), 7),
            (Concept::Bse, 6),
        ];
        for (concept, max_n) in concepts {
            let g = random_instance(max_n, rng);
            for alpha in alpha_grid(g.n()) {
                let state = GameState::new(g.clone(), alpha);
                let uninterrupted = Solver::default()
                    .check(&StabilityQuery::on(concept, &state))
                    .unwrap();
                let canonical = uninterrupted.witness().cloned();
                for budget in [1u64, 17] {
                    for threads in [1usize, 2] {
                        let solver = Solver::new(
                            ExecPolicy::default()
                                .with_eval_budget(budget)
                                .with_threads(threads),
                        );
                        let resolved = resolve_with_resume(&solver, concept, &state);
                        assert_eq!(
                            resolved,
                            canonical,
                            "witness diverged under {concept}, budget {budget}, \
                             {threads} threads, α = {}",
                            state.alpha()
                        );
                    }
                }
            }
        }
    });
}

#[test]
fn parallel_unbudgeted_checks_match_sequential_witnesses() {
    prop("parallel == sequential", |rng| {
        let g = random_instance(8, rng);
        let alpha = Alpha::integer(2).unwrap();
        let state = GameState::new(g, alpha);
        for concept in [Concept::Bne, Concept::KBse(3)] {
            let seq = Solver::default()
                .check(&StabilityQuery::on(concept, &state))
                .unwrap();
            for threads in [2usize, 3] {
                let par = Solver::new(ExecPolicy::default().with_threads(threads))
                    .check(&StabilityQuery::on(concept, &state))
                    .unwrap();
                assert_eq!(
                    par.witness(),
                    seq.witness(),
                    "{concept} witness diverged at {threads} threads"
                );
                assert_eq!(par.is_stable(), seq.is_stable());
            }
        }
    });
}

#[test]
fn check_too_large_is_unreachable_from_the_solver_path() {
    // (a) An instance the legacy n ≤ 21 raw-space guard once refused
    // outright — C40 inside its Lemma 2.4 stability window — is simply
    // *solved*: the pruning layer collapses the 40·2³⁹ raw space to a
    // few hundred candidates, and since the branch-and-bound generator
    // landed even the convenience entry point runs it exactly (the
    // default budget now meters evaluations, not the raw space).
    let cycle = generators::cycle(40);
    let alpha = Alpha::integer(370).unwrap();
    assert!(bncg::core::concepts::bne::find_violation(&cycle, alpha)
        .unwrap()
        .is_none());
    let v = Solver::default()
        .check(&StabilityQuery::new(Concept::Bne, &cycle, alpha))
        .unwrap();
    assert_eq!(v.is_stable(), Some(true), "C40 is BNE-stable in its window");

    // (b) The same oversized instance under a 1-eval budget: the cycle's
    // pure-removal candidates are genuinely evaluated (α > 1, not a
    // tree), so the budget trips mid-scan with a frontier, and the
    // resume chain still certifies stability.
    let state = GameState::new(cycle, alpha);
    let solver = Solver::new(ExecPolicy::default().with_eval_budget(1));
    match solver
        .check(&StabilityQuery::on(Concept::Bne, &state))
        .unwrap()
    {
        Verdict::Exhausted { frontier, progress } => {
            assert!(progress.evals_total >= 1, "budget stops only after work");
            assert_eq!(frontier.concept(), Concept::Bne);
            assert!(progress.units_done < progress.units_total);
        }
        v => panic!("expected exhaustion under a 1-eval budget, got {v:?}"),
    }
    assert_eq!(resolve_with_resume(&solver, Concept::Bne, &state), None);
}

#[test]
fn zero_deadline_exhausts_and_resumes_to_stability() {
    let star = generators::star(16);
    let alpha = Alpha::integer(2).unwrap();
    let state = GameState::new(star, alpha);
    let tight = Solver::new(ExecPolicy::default().with_deadline(Duration::ZERO));
    let Verdict::Exhausted { frontier, .. } = tight
        .check(&StabilityQuery::on(Concept::Bne, &state))
        .unwrap()
    else {
        panic!("a zero deadline must exhaust the star16 BNE scan")
    };
    let done = Solver::default()
        .check(&StabilityQuery::on(Concept::Bne, &state).resume(frontier))
        .unwrap();
    assert_eq!(done.is_stable(), Some(true));
}

#[test]
fn raised_cancel_token_exhausts_exponential_checks() {
    let token = Arc::new(AtomicBool::new(true));
    let solver = Solver::new(ExecPolicy::default().with_cancel(token));
    let state = GameState::new(generators::star(16), Alpha::integer(2).unwrap());
    let v = solver
        .check(&StabilityQuery::on(Concept::Bne, &state))
        .unwrap();
    assert!(matches!(v, Verdict::Exhausted { .. }));
    // Polynomial concepts complete eagerly regardless.
    let v = solver
        .check(&StabilityQuery::on(Concept::Ps, &state))
        .unwrap();
    assert_eq!(v.is_stable(), Some(true));
}

#[test]
fn check_many_returns_input_order_and_matches_individual_checks() {
    let alpha = Alpha::integer(2).unwrap();
    let mut rng = bncg::graph::test_rng(0xBA7C);
    let states: Vec<GameState> = (0..12)
        .map(|_| GameState::new(generators::random_connected(8, 0.3, &mut rng), alpha))
        .collect();
    let queries: Vec<StabilityQuery> = states
        .iter()
        .map(|s| StabilityQuery::on(Concept::Bne, s))
        .collect();
    let solo = Solver::default();
    let pooled = Solver::new(ExecPolicy::default().with_threads(4));
    let batch = pooled.check_many(&queries);
    assert_eq!(batch.len(), queries.len());
    for (i, (state, verdict)) in states.iter().zip(batch).enumerate() {
        let expected = solo
            .check(&StabilityQuery::on(Concept::Bne, state))
            .unwrap();
        let got = verdict.unwrap();
        assert_eq!(
            got.witness(),
            expected.witness(),
            "batch slot {i} diverged from the individual check"
        );
        assert_eq!(got.is_stable(), expected.is_stable());
    }
}

#[test]
fn mismatched_frontiers_are_rejected_not_misapplied() {
    let alpha = Alpha::integer(2).unwrap();
    let state = GameState::new(generators::star(16), alpha);
    let tight = Solver::new(ExecPolicy::default().with_deadline(Duration::ZERO));
    let Verdict::Exhausted { frontier, .. } = tight
        .check(&StabilityQuery::on(Concept::Bne, &state))
        .unwrap()
    else {
        panic!("expected exhaustion")
    };
    let solver = Solver::default();
    // Wrong concept.
    let wrong = StabilityQuery::on(Concept::KBse(2), &state).resume(frontier);
    assert!(matches!(
        solver.check(&wrong),
        Err(GameError::Unsupported { .. })
    ));
    // Wrong instance (different α ⇒ different fingerprint).
    let other = GameState::new(generators::star(16), Alpha::integer(3).unwrap());
    let wrong = StabilityQuery::on(Concept::Bne, &other).resume(frontier);
    assert!(matches!(
        solver.check(&wrong),
        Err(GameError::Unsupported { .. })
    ));
    // A token forged for a polynomial concept is rejected outright —
    // those checks complete eagerly, so no genuine frontier names them.
    let forged: Frontier =
        "{\"v\":1,\"concept\":\"ps\",\"instance\":1,\"unit\":0,\"pos\":0,\"evals\":0}"
            .parse()
            .unwrap();
    let wrong = StabilityQuery::on(Concept::Ps, &state).resume(forged);
    assert!(matches!(
        solver.check(&wrong),
        Err(GameError::Unsupported { .. })
    ));
    // A forged token naming a unit outside the scan is rejected —
    // mirroring round_robin's forged-cursor rejection. Before the check
    // landed, the drive loop started past the last unit, completed
    // instantly, and reported Stable without scanning anything.
    let forged: Frontier = format!(
        "{{\"v\":1,\"concept\":\"bne\",\"instance\":{},\"unit\":999,\"pos\":0,\"evals\":0}}",
        state.fingerprint()
    )
    .parse()
    .unwrap();
    let wrong = StabilityQuery::on(Concept::Bne, &state).resume(forged);
    assert!(matches!(
        solver.check(&wrong),
        Err(GameError::Unsupported { .. })
    ));
    // Malformed tokens fail to parse instead of resuming garbage.
    assert!("{\"concept\":\"bne\"}".parse::<Frontier>().is_err());
    assert!("nonsense".parse::<Frontier>().is_err());
    // A layout-version mismatch is rejected at parse time.
    assert!(
        "{\"v\":9,\"concept\":\"bne\",\"instance\":1,\"unit\":0,\"pos\":0,\"evals\":0}"
            .parse::<Frontier>()
            .is_err()
    );
}

#[test]
fn structural_limits_error_as_unsupported_not_too_large() {
    // BSE's 64-bit target-graph masks cap at n = 11: a representational
    // limit, reported as such (not as a budget refusal).
    let g = generators::path(12);
    let q = StabilityQuery::new(Concept::Bse, &g, Alpha::integer(1).unwrap());
    assert!(matches!(
        Solver::default().check(&q),
        Err(GameError::Unsupported { .. })
    ));
    // k-BSE caps its materialized coalition index (C(50,1..10) ≈ 1e10
    // units would exhaust memory before any stop condition could fire).
    let g = generators::path(50);
    let q = StabilityQuery::new(Concept::KBse(10), &g, Alpha::integer(1).unwrap());
    assert!(matches!(
        Solver::default().check(&q),
        Err(GameError::Unsupported { .. })
    ));
}

/// The best-response resume law: any chain of budgeted slices returns
/// the identical move (and post-move cost) the uninterrupted scan
/// returns — for every agent, across the α grid, at interrupt-happy
/// budgets.
#[test]
fn budgeted_best_response_chain_returns_the_uninterrupted_move() {
    prop("best-response resume determinism", |rng| {
        let g = random_instance(9, rng);
        for alpha in alpha_grid(g.n()) {
            let state = GameState::new(g.clone(), alpha);
            for u in 0..g.n() as u32 {
                let uninterrupted = best_response_in(&state, u, CheckBudget::default()).unwrap();
                for budget in [1u64, 17] {
                    let policy = ExecPolicy::default().with_eval_budget(budget);
                    let mut verdict = best_response_with_policy(&state, u, &policy).unwrap();
                    let mut slices = 0u32;
                    let resolved = loop {
                        match verdict {
                            BestResponseVerdict::Optimal { response, .. } => break response,
                            BestResponseVerdict::ImprovedSoFar { ref frontier, .. }
                            | BestResponseVerdict::Exhausted { ref frontier, .. } => {
                                // Tokens round-trip through JSON mid-chain.
                                let parsed: BestResponseFrontier =
                                    frontier.to_json().parse().unwrap();
                                assert_eq!(&parsed, frontier, "frontier JSON round trip");
                                verdict = best_response_resume(&state, &policy, &parsed).unwrap();
                                slices += 1;
                                assert!(slices < 100_000, "resume chain failed to terminate");
                            }
                        }
                    };
                    assert_eq!(
                        resolved,
                        uninterrupted,
                        "best response diverged for u = {u}, budget {budget}, α = {}",
                        state.alpha()
                    );
                }
            }
        }
    });
}

/// The trajectory resume law: a round-robin run interrupted by its
/// eval-budget pool at arbitrary activations and resumed from its
/// checkpoints replays the identical move sequence — hence the
/// identical state-fingerprint sequence — and reaches the identical
/// final state and verdict an uninterrupted run reaches.
#[test]
fn checkpointed_round_robin_resumes_the_identical_trajectory() {
    prop("round-robin checkpoint determinism", |rng| {
        let g = random_instance(9, rng);
        for alpha in alpha_grid(g.n()) {
            let uninterrupted =
                round_robin::run_with_policy(&g, alpha, 60, &ExecPolicy::default()).unwrap();
            for budget in [25u64, 150] {
                let policy = ExecPolicy::default().with_eval_budget(budget);
                let mut out = round_robin::run_with_policy(&g, alpha, 60, &policy).unwrap();
                let mut history = out.history.clone();
                let mut slices = 1u32;
                while let Some(checkpoint) = out.checkpoint.take() {
                    let parsed: round_robin::Checkpoint = checkpoint.to_json().parse().unwrap();
                    assert_eq!(parsed, checkpoint, "checkpoint JSON round trip");
                    out =
                        round_robin::resume(&out.final_graph, alpha, 60, &policy, &parsed).unwrap();
                    history.extend(out.history.iter().cloned());
                    slices += 1;
                    assert!(slices < 100_000, "resume chain failed to terminate");
                }
                assert_eq!(
                    history, uninterrupted.history,
                    "move sequence diverged at budget {budget}, α = {alpha}"
                );
                assert_eq!(out.converged, uninterrupted.converged);
                assert_eq!(out.cycled, uninterrupted.cycled);
                assert_eq!(out.rounds, uninterrupted.rounds);
                assert_eq!(out.moves, uninterrupted.moves);
                assert_eq!(
                    out.final_graph.fingerprint(),
                    uninterrupted.final_graph.fingerprint()
                );
            }
        }
    });
}

/// The batch pool: a `check_many` whose queries drain one shared eval
/// budget keeps its input-order results, sheds the tail once the pool
/// drains, and every shed frontier resumes to the exact verdict the
/// unbudgeted batch returns.
#[test]
fn batch_budget_pool_sheds_and_resumes_in_order() {
    let alpha = Alpha::integer(2).unwrap();
    let mut rng = bncg::graph::test_rng(0xB001);
    let states: Vec<GameState> = (0..10)
        .map(|_| GameState::new(generators::random_connected(9, 0.3, &mut rng), alpha))
        .collect();
    let queries: Vec<StabilityQuery> = states
        .iter()
        .map(|s| StabilityQuery::on(Concept::Bne, s))
        .collect();
    let reference: Vec<Verdict> = queries
        .iter()
        .map(|q| Solver::default().check(q).unwrap())
        .collect();

    // A 5-eval pool: the first queries drain it, the rest load-shed.
    let pooled = Solver::new(ExecPolicy::default().with_batch_budget(5));
    let verdicts = pooled.check_many(&queries);
    assert_eq!(verdicts.len(), queries.len());
    let mut shed = 0usize;
    for (i, verdict) in verdicts.into_iter().enumerate() {
        match verdict.unwrap() {
            Verdict::Exhausted { frontier, .. } => {
                shed += 1;
                let done = Solver::default()
                    .check(&StabilityQuery::on(Concept::Bne, &states[i]).resume(frontier))
                    .unwrap();
                assert_eq!(done.witness(), reference[i].witness(), "slot {i} resumed");
                assert_eq!(done.is_stable(), reference[i].is_stable());
            }
            conclusive => {
                assert_eq!(conclusive.witness(), reference[i].witness(), "slot {i}");
                assert_eq!(conclusive.is_stable(), reference[i].is_stable());
            }
        }
    }
    assert!(shed > 0, "a 5-eval pool must shed part of the batch");

    // A roomy pool completes every query with the reference verdicts,
    // threads notwithstanding (order is the input order by contract).
    let roomy = Solver::new(
        ExecPolicy::default()
            .with_batch_budget(100_000_000)
            .with_threads(3),
    );
    for (i, verdict) in roomy.check_many(&queries).into_iter().enumerate() {
        let verdict = verdict.unwrap();
        assert_eq!(verdict.witness(), reference[i].witness(), "slot {i}");
        assert_eq!(verdict.is_stable(), reference[i].is_stable());
    }
}

#[test]
fn verdicts_carry_work_accounting() {
    let state = GameState::new(generators::path(10), Alpha::integer(2).unwrap());
    match Solver::default()
        .check(&StabilityQuery::on(Concept::Bne, &state))
        .unwrap()
    {
        Verdict::Unstable { evals, .. } => assert!(evals > 0, "the scan priced candidates"),
        v => panic!("P10 is not in BNE at α = 2, got {v:?}"),
    }
    let stable = GameState::new(generators::star(10), Alpha::integer(2).unwrap());
    match Solver::default()
        .check(&StabilityQuery::on(Concept::Bne, &stable))
        .unwrap()
    {
        Verdict::Stable { pruned, .. } => {
            assert!(pruned > 0, "the star scan is pruned, not evaluated");
        }
        v => panic!("the star is in BNE at α = 2, got {v:?}"),
    }
}

/// The serving layer's slice primitive (ISSUE 7): a chain of
/// `check_sliced` calls against one long-lived `BudgetPool` must land on
/// the identical verdict, witness, and cumulative eval count as one
/// uninterrupted run — at any slice quantum — and a drained pool must
/// shed with zero further work while keeping the frontier resumable.
#[test]
fn sliced_chains_match_one_shot_runs() {
    use bncg::core::BudgetPool;
    prop("check_sliced == check", |rng| {
        let g = random_instance(9, rng);
        let alpha = Alpha::integer(2).unwrap();
        let state = GameState::new(g, alpha);
        for concept in [Concept::Bne, Concept::KBse(2)] {
            let reference = Solver::default()
                .check(&StabilityQuery::on(concept, &state))
                .unwrap();
            for slice in [1u64, 17, 100_000] {
                let pool = BudgetPool::new(u64::MAX);
                let solver = Solver::default();
                let mut resume: Option<Frontier> = None;
                let mut slices = 0u32;
                let verdict = loop {
                    let mut query = StabilityQuery::on(concept, &state);
                    if let Some(f) = resume {
                        query = query.resume(f);
                    }
                    match solver.check_sliced(&query, &pool, slice).unwrap() {
                        Verdict::Exhausted { frontier, .. } => {
                            resume = Some(frontier);
                            slices += 1;
                            assert!(slices < 100_000, "chain failed to terminate");
                        }
                        conclusive => break conclusive,
                    }
                };
                assert_eq!(verdict.witness(), reference.witness(), "slice {slice}");
                assert_eq!(verdict.is_stable(), reference.is_stable());
                match (&verdict, &reference) {
                    (
                        Verdict::Stable { evals, .. },
                        Verdict::Stable {
                            evals: ref_evals, ..
                        },
                    )
                    | (
                        Verdict::Unstable { evals, .. },
                        Verdict::Unstable {
                            evals: ref_evals, ..
                        },
                    ) => assert_eq!(
                        evals, ref_evals,
                        "cumulative evals diverged at slice {slice}"
                    ),
                    _ => unreachable!(),
                }
                // The pool metered exactly the chain's priced candidates.
                assert_eq!(
                    pool.used(),
                    verdict.frontier().map_or_else(
                        || match verdict {
                            Verdict::Stable { evals, .. } | Verdict::Unstable { evals, .. } =>
                                evals,
                            Verdict::Exhausted { .. } => unreachable!(),
                        },
                        |_| unreachable!(),
                    )
                );
            }
        }
    });
}

#[test]
fn drained_and_expired_pools_shed_sliced_checks_with_zero_work() {
    use bncg::core::BudgetPool;
    use std::time::Instant;
    let g = generators::cycle(40);
    let alpha = Alpha::integer(370).unwrap();
    let state = GameState::new(g, alpha);

    // Drain a 30-eval pool mid-scan (the C40 check prices ~120).
    let pool = BudgetPool::new(30);
    let first = Solver::default()
        .check_sliced(&StabilityQuery::on(Concept::Bne, &state), &pool, 1_000)
        .unwrap();
    let Verdict::Exhausted { frontier, .. } = first else {
        panic!("a 30-eval pool cannot complete the C40 scan, got {first:?}")
    };
    assert!(pool.drained(), "the slice must charge the pool as it scans");
    let used_at_shed = pool.used();

    // Every further slice is a zero-work shed: same frontier evals, no
    // new pool usage — the admission-control invariant the daemon's
    // fair-share layer is built on.
    let again = Solver::default()
        .check_sliced(
            &StabilityQuery::on(Concept::Bne, &state).resume(frontier),
            &pool,
            1_000,
        )
        .unwrap();
    let Verdict::Exhausted {
        frontier: stalled, ..
    } = again
    else {
        panic!("drained pool must shed, got {again:?}")
    };
    assert_eq!(stalled.evals(), frontier.evals(), "zero work after drain");
    assert_eq!(pool.used(), used_at_shed);

    // Topping up resumes to the one-shot verdict with cumulative evals.
    pool.top_up(u64::MAX - 30);
    let done = Solver::default()
        .check_sliced(
            &StabilityQuery::on(Concept::Bne, &state).resume(stalled),
            &pool,
            u64::MAX,
        )
        .unwrap();
    match done {
        Verdict::Stable { evals, .. } => assert_eq!(evals, 120),
        v => panic!("C40 at α = 370 is BNE-stable, got {v:?}"),
    }

    // An expired pool sheds regardless of remaining budget.
    let expired = BudgetPool::new(u64::MAX).with_expiry(Instant::now());
    let shed = Solver::default()
        .check_sliced(&StabilityQuery::on(Concept::Bne, &state), &expired, 1_000)
        .unwrap();
    assert!(
        matches!(shed, Verdict::Exhausted { .. }),
        "expired pools shed, got {shed:?}"
    );
    assert_eq!(expired.used(), 0, "expiry shed does zero work");
}
