//! Offline shim for the parts of the `criterion` API this workspace uses.
//!
//! The build container has no access to crates.io, so the bench targets
//! link against this minimal harness instead of the real `criterion`. It
//! keeps the same surface (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros) and reports median wall-clock time per
//! iteration. Statistics are deliberately simple: a warm-up to size the
//! iteration batch, then `sample_size` timed batches.
//!
//! When the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` targets) every benchmark runs exactly once as a smoke
//! test and no timing is reported.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (the std implementation).
pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.test_mode, self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.label()),
            self.test_mode,
            self.sample_size,
            f,
        );
        self
    }

    /// Runs a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// The per-benchmark timing handle passed to the user closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` (the shim's whole measurement model).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, test_mode: bool, samples: usize, mut f: F) {
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {name}: ok (smoke)");
        return;
    }
    // Warm-up: find an iteration count that takes ≥ ~5 ms per sample.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "bench {name}: median {} (min {}, max {}, {} samples × {} iters)",
        fmt_time(median),
        fmt_time(min),
        fmt_time(max),
        per_iter.len(),
        iters
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("bfs", 100).label(), "bfs/100");
        assert_eq!(BenchmarkId::from_parameter(7).label(), "7");
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.5e-9).ends_with("ns"));
        assert!(fmt_time(2.5e-6).ends_with("µs"));
        assert!(fmt_time(2.5e-3).ends_with("ms"));
        assert!(fmt_time(2.5).ends_with('s'));
    }
}
