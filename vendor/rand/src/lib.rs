//! Offline shim for the parts of the `rand` API this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! this minimal, API-compatible replacement instead of the real `rand`
//! crate: a seedable xoshiro-style small RNG, `Rng::gen_range` /
//! `Rng::gen_bool`, and the two `SliceRandom` methods (`choose`,
//! `shuffle`). Nothing in the reproduction makes statistical claims that
//! rest on generator quality; determinism from a seed is the only contract
//! callers rely on (see `bncg_graph::test_rng`).

#![warn(missing_docs)]

/// Low-level uniform `u64` source, the only method an RNG must implement.
pub trait RngCore {
    /// The next pseudo-random 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next pseudo-random 32-bit value (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly like the real `rand` does for small RNGs.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive integer
    /// ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xorshift128+), mirroring the role
    /// of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s0: u64,
        s1: u64,
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s0 = splitmix64(&mut state);
            let mut s1 = splitmix64(&mut state);
            if s0 == 0 && s1 == 0 {
                s1 = 1; // xorshift must not start at the all-zero state
            }
            SmallRng { s0, s1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.s0;
            let y = self.s1;
            self.s0 = y;
            x ^= x << 23;
            self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
            self.s1.wrapping_add(y)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// An in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_hits_members() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn unsized_rng_is_usable_through_trait_objects_style_generics() {
        fn takes_unsized<R: super::Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen_range(0..10u32)
        }
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(takes_unsized(&mut rng) < 10);
    }
}
